#include "analysis/schedule_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/offline_model.hpp"
#include "core/darts.hpp"
#include "sched/fixed_order.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::analysis {
namespace {

TEST(ScheduleIo, SaveLoadRoundTrip) {
  const Schedule schedule{{3, 1, 4, 1 + 14, 9, 2, 6},
                          {},
                          {5, 0, 8, 17, 16, 15, 14, 13, 12, 11, 10, 7, 18,
                           19, 20, 21, 22, 23}};
  const std::string path = testing::TempDir() + "/schedule.txt";
  ASSERT_TRUE(save_schedule(schedule, path));
  const auto loaded = load_schedule(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, schedule);
  std::remove(path.c_str());
}

TEST(ScheduleIo, RejectsWrongMagic) {
  const std::string path = testing::TempDir() + "/bad_schedule.txt";
  {
    std::ofstream out(path);
    out << "not-a-schedule\n";
  }
  EXPECT_FALSE(load_schedule(path).has_value());
  std::remove(path.c_str());
}

TEST(ScheduleIo, RejectsTruncatedFile) {
  const std::string path = testing::TempDir() + "/truncated_schedule.txt";
  {
    std::ofstream out(path);
    out << "memsched-schedule v1\ngpus 2\ngpu 0 5\n1 2 3\n";  // only 3 of 5
  }
  EXPECT_FALSE(load_schedule(path).has_value());
  std::remove(path.c_str());
}

TEST(ScheduleIo, MissingFileYieldsNullopt) {
  EXPECT_FALSE(load_schedule("/nonexistent/schedule.txt").has_value());
}

TEST(ScheduleIo, MatchesGraphValidation) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 2, .data_bytes = 10});
  EXPECT_TRUE(schedule_matches_graph({{0, 1}, {2, 3}}, graph));
  EXPECT_FALSE(schedule_matches_graph({{0, 1}, {2}}, graph));       // missing
  EXPECT_FALSE(schedule_matches_graph({{0, 1, 1}, {2, 3}}, graph)); // dup
  EXPECT_FALSE(schedule_matches_graph({{0, 1}, {2, 9}}, graph));    // unknown
}

TEST(ScheduleIo, ArchivedDartsScheduleReplaysIdentically) {
  // Record a DARTS run, archive its realized order, reload and replay it:
  // the replay must transfer no more than the archived run (same order, and
  // the replay's fixed order avoids DARTS's decision randomness).
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 8, .data_bytes = 14 * core::kMB});
  const core::Platform platform = core::make_v100_platform(2, 120 * core::kMB);

  core::DartsScheduler darts;
  sim::EngineConfig config;
  config.record_trace = true;
  sim::RuntimeEngine original(graph, platform, darts, config);
  const core::RunMetrics original_metrics = original.run();

  Schedule schedule;
  for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
    schedule.push_back(original.trace().execution_order(gpu));
  }
  ASSERT_TRUE(schedule_matches_graph(schedule, graph));

  const std::string path = testing::TempDir() + "/darts_schedule.txt";
  ASSERT_TRUE(save_schedule(schedule, path));
  const auto loaded = load_schedule(path);
  ASSERT_TRUE(loaded.has_value());

  // Replay under Belady eviction — the offline-optimal analogue of LUF for
  // a fixed order (abl_eviction shows LUF matching it on this workload).
  sched::FixedOrderScheduler replay(
      *loaded, sched::FixedOrderScheduler::Eviction::kBelady);
  sim::RuntimeEngine engine(graph, platform, replay);
  const core::RunMetrics replay_metrics = engine.run();
  EXPECT_EQ(replay_metrics.per_gpu[0].tasks_executed,
            schedule[0].size());
  // Same order, near-equivalent eviction: byte counts in the same ballpark
  // (pipeline/pop timing differs slightly around boundaries).
  EXPECT_NEAR(static_cast<double>(replay_metrics.total_bytes_loaded()),
              static_cast<double>(original_metrics.total_bytes_loaded()),
              0.2 * static_cast<double>(original_metrics.total_bytes_loaded()));
  std::remove(path.c_str());
}

TEST(LiveFootprint, PeakOverlapOfUseIntervals) {
  core::TaskGraphBuilder builder;
  const core::DataId d0 = builder.add_data(10);
  const core::DataId d1 = builder.add_data(20);
  const core::DataId d2 = builder.add_data(30);
  builder.add_task(1.0, {d0});        // pos 0: d0 live
  builder.add_task(1.0, {d0, d1});    // pos 1: d0+d1 = 30
  builder.add_task(1.0, {d1, d2});    // pos 2: d1+d2 = 50
  builder.add_task(1.0, {d2});        // pos 3: d2
  const core::TaskGraph graph = builder.build();

  EXPECT_EQ(max_live_footprint(graph, {0, 1, 2, 3}), 50u);
  // Reordering can change the peak: putting the d2 tasks first keeps d0/d1
  // and d2 lifetimes disjoint except at the d1/d2 joint.
  EXPECT_EQ(max_live_footprint(graph, {3, 2, 1, 0}), 50u);
}

TEST(LiveFootprint, RowMajorMatmulNeedsOneRowPlusAllColumns) {
  const std::uint32_t n = 6;
  const core::TaskGraph graph = work::make_matmul_2d({.n = n, .data_bytes = 10});
  std::vector<core::TaskId> order(graph.num_tasks());
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    order[task] = task;  // row-major
  }
  // Columns stay live across the whole run; rows one at a time — except at
  // row boundaries where two rows overlap... rows don't overlap (row i's
  // last use is before row i+1's first use): peak = N columns + 1 row.
  EXPECT_EQ(max_live_footprint(graph, order), (n + 1) * 10);
}

TEST(LiveFootprint, BeladyNeedsNoReloadAtTheFootprint) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 5, .data_bytes = 10});
  std::vector<core::TaskId> order(graph.num_tasks());
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    order[task] = task;
  }
  const std::uint64_t footprint = max_live_footprint(graph, order);
  const auto at = replay_schedule(graph, {order}, footprint,
                                  ReplayEviction::kBelady);
  EXPECT_EQ(at.total_loads, loads_lower_bound(graph));
  const auto below = replay_schedule(graph, {order}, footprint - 10,
                                     ReplayEviction::kBelady);
  EXPECT_GT(below.total_loads, loads_lower_bound(graph));
}

}  // namespace
}  // namespace mg::analysis
