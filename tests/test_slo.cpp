// SLO subsystem tests: tier policy mapping, the batch planner's
// compatibility rules (template, fusion window, warp budget, batch cap),
// admission-queue tie-breaking / targeted take / anti-starvation aging,
// and the serving-loop integration — fused members retiring exactly once
// under every scheduler with the online InvariantChecker, unfuse-on-fault,
// eviction vetoes under memory pressure, per-tier report sections, DARTS
// tier boost, priority announcements surviving a mid-stream node drain,
// and byte-identity of a disabled SLO config with every knob set.
#include "slo/tier_policy.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "serve/admission.hpp"
#include "serve/serve_engine.hpp"
#include "serve/union_graph.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "slo/batch_planner.hpp"

namespace mg::slo {
namespace {

using core::DataId;
using core::TaskId;

core::Platform test_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

core::Platform cluster_platform(std::uint32_t gpus, std::uint32_t nodes) {
  core::Platform platform = test_platform(gpus, 1000);
  platform.num_nodes = nodes;
  platform.host_memory_bytes = 4000;
  return platform;
}

/// Job template: 4 data of 10 bytes, 6 tasks of 5 us each reading two
/// neighbouring data (the test_serve template, so timings stay
/// hand-checkable).
core::TaskGraph make_template(std::uint32_t warps = 0) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 4; ++i) {
    data.push_back(builder.add_data(10, "d" + std::to_string(i)));
  }
  for (int t = 0; t < 6; ++t) {
    const TaskId task = builder.add_task(
        5.0, {data[t % 4], data[(t + 1) % 4]}, "t" + std::to_string(t));
    if (warps > 0) builder.set_task_warps(task, warps);
  }
  return builder.build();
}

/// Event recorder for fusion/veto assertions.
class Recorder final : public sim::Inspector {
 public:
  void on_event(const sim::InspectorEvent& event) override {
    events_.push_back(event);
  }
  [[nodiscard]] std::uint64_t count(sim::InspectorEventKind kind) const {
    std::uint64_t n = 0;
    for (const sim::InspectorEvent& event : events_) {
      if (event.kind == kind) ++n;
    }
    return n;
  }
  [[nodiscard]] const std::vector<sim::InspectorEvent>& events() const {
    return events_;
  }

 private:
  std::vector<sim::InspectorEvent> events_;
};

TierPolicy two_tiers(std::uint32_t hi_weight = 4, double hi_deadline = 0.0) {
  return TierPolicy{
      {{.min_priority = 0, .deadline_us = 0.0, .admission_weight = 0},
       {.min_priority = 2,
        .deadline_us = hi_deadline,
        .admission_weight = hi_weight}}};
}

// ---------------------------------------------------------------------------
// TierPolicy.

TEST(TierPolicy, MapsPriorityToTheHighestClearedTier) {
  const TierPolicy policy{{{.min_priority = 0},
                           {.min_priority = 2},
                           {.min_priority = 5}}};
  EXPECT_EQ(policy.num_tiers(), 3u);
  EXPECT_EQ(policy.tier_of(0), 0u);
  EXPECT_EQ(policy.tier_of(1), 0u);
  EXPECT_EQ(policy.tier_of(2), 1u);
  EXPECT_EQ(policy.tier_of(4), 1u);
  EXPECT_EQ(policy.tier_of(5), 2u);
  EXPECT_EQ(policy.tier_of(1000), 2u);
}

TEST(TierPolicy, EvenSpacingAndTheDefaultCatchAll) {
  const TierPolicy catch_all;
  EXPECT_EQ(catch_all.num_tiers(), 1u);
  EXPECT_EQ(catch_all.tier_of(7), 0u);

  const TierPolicy even = TierPolicy::even(3);
  EXPECT_EQ(even.num_tiers(), 3u);
  EXPECT_EQ(even.tier_of(0), 0u);
  EXPECT_EQ(even.tier_of(1), 1u);
  EXPECT_EQ(even.tier_of(2), 2u);
  EXPECT_EQ(even.tier_of(9), 2u);
}

TEST(TierPolicyDeathTest, RejectsMalformedTierLists) {
  EXPECT_DEATH(TierPolicy{std::vector<TierSpec>{}}, "at least one tier");
  EXPECT_DEATH(TierPolicy{{{.min_priority = 1}}}, "priority 0");
  EXPECT_DEATH((TierPolicy{{{.min_priority = 0}, {.min_priority = 0}}}),
               "ascending");
}

// ---------------------------------------------------------------------------
// BatchPlanner.

TEST(BatchPlanner, FusesOnlyCompatibleQueuedJobs) {
  const std::vector<core::TaskGraph> templates = {make_template(),
                                                  make_template()};
  std::vector<serve::JobSpec> jobs(5);
  jobs[3].graph = 1;  // different template: never fusable with job 0
  const serve::UnionGraph u = build_union_graph(templates, jobs, true);

  SloConfig config;
  config.enabled = true;
  config.batching = true;
  config.max_batch = 3;
  config.fusion_window_us = 100.0;
  config.marginal_compute = 0.5;
  const BatchPlanner planner(u, jobs, config, /*budget_warps=*/0);

  // Job 2 aged out of the window, job 3 is the wrong template; jobs 1 and 4
  // fill the batch up to the cap (leader + 2).
  const std::vector<BatchPlanner::QueuedJob> queue = {
      {.job = 2, .enqueue_us = 0.0},
      {.job = 1, .enqueue_us = 150.0},
      {.job = 3, .enqueue_us = 160.0},
      {.job = 4, .enqueue_us = 170.0},
  };
  const BatchPlanner::Plan plan = planner.plan(0, 200.0, queue);
  EXPECT_EQ(plan.members, (std::vector<std::uint32_t>{1, 4}));
  EXPECT_DOUBLE_EQ(plan.duration_scale, 2.0);  // 1 + 2 x 0.5

  // Batching off: the planner never proposes anything.
  SloConfig off = config;
  off.batching = false;
  const BatchPlanner idle(u, jobs, off, 0);
  EXPECT_TRUE(idle.plan(0, 200.0, queue).members.empty());
}

TEST(BatchPlanner, WarpBudgetBoundsTheBatch) {
  const std::vector<core::TaskGraph> templates = {make_template(600)};
  const std::vector<serve::JobSpec> jobs(4);
  const serve::UnionGraph u = build_union_graph(templates, jobs, true);

  SloConfig config;
  config.enabled = true;
  config.batching = true;
  config.max_batch = 4;
  const std::vector<BatchPlanner::QueuedJob> queue = {
      {.job = 1, .enqueue_us = 0.0},
      {.job = 2, .enqueue_us = 0.0},
      {.job = 3, .enqueue_us = 0.0},
  };

  // 600 warps per task slot: a 1300-warp budget fits the leader plus one.
  const BatchPlanner tight(u, jobs, config, /*budget_warps=*/1300);
  EXPECT_EQ(tight.plan(0, 0.0, queue).members,
            (std::vector<std::uint32_t>{1}));
  // No budget (governor off): the cap is the only bound.
  const BatchPlanner loose(u, jobs, config, 0);
  EXPECT_EQ(loose.plan(0, 0.0, queue).members.size(), 3u);
}

// ---------------------------------------------------------------------------
// Admission queue: tie-breaking, targeted take, aging.

TEST(Admission, EqualPrioritiesPopFifoAndHigherPriorityJumps) {
  serve::AdmissionController admission({.max_jobs_in_flight = 1},
                                       {10, 10, 10, 10});
  using Decision = serve::AdmissionController::Decision;
  EXPECT_EQ(admission.submit(0, 0), Decision::kAdmit);
  EXPECT_EQ(admission.submit(1, 1), Decision::kQueue);
  EXPECT_EQ(admission.submit(2, 1), Decision::kQueue);
  EXPECT_EQ(admission.submit(3, 2), Decision::kQueue);
  // Pop order: priority desc, FIFO within a level.
  admission.on_job_retired(0);
  EXPECT_EQ(admission.try_admit_queued(), 3u);
  admission.on_job_retired(3);
  EXPECT_EQ(admission.try_admit_queued(), 1u);
  admission.on_job_retired(1);
  EXPECT_EQ(admission.try_admit_queued(), 2u);
}

TEST(Admission, TakeRemovesASpecificQueuedJobAndAccountsIt) {
  serve::AdmissionController admission({.max_jobs_in_flight = 1},
                                       {10, 10, 10});
  using Decision = serve::AdmissionController::Decision;
  EXPECT_EQ(admission.submit(0, 0), Decision::kAdmit);
  EXPECT_EQ(admission.submit(1, 0, 5.0), Decision::kQueue);
  EXPECT_EQ(admission.submit(2, 1, 7.0), Decision::kQueue);

  // queued() exposes the waiting set in submission order, with stamps.
  const auto queued = admission.queued();
  ASSERT_EQ(queued.size(), 2u);
  EXPECT_EQ(queued[0].job, 1u);
  EXPECT_DOUBLE_EQ(queued[0].enqueue_us, 5.0);
  EXPECT_EQ(queued[1].job, 2u);
  EXPECT_EQ(queued[1].priority, 1u);

  // A fusion member leaves the queue and is accounted in flight.
  EXPECT_TRUE(admission.take(2));
  EXPECT_FALSE(admission.take(2));  // already gone
  EXPECT_EQ(admission.jobs_in_flight(), 2u);
  EXPECT_EQ(admission.queue_depth(), 1u);
  admission.on_job_retired(0);
  admission.on_job_retired(2);
  EXPECT_EQ(admission.try_admit_queued(), 1u);
}

TEST(Admission, AgingLetsALowJobOutwaitASaturatingHighTierStream) {
  // Without aging the priority-2 stream starves job 0 forever.
  serve::AdmissionController strict({.max_jobs_in_flight = 1},
                                    std::vector<std::uint64_t>(8, 10));
  using Decision = serve::AdmissionController::Decision;
  EXPECT_EQ(strict.submit(1, 2, 0.0), Decision::kAdmit);
  EXPECT_EQ(strict.submit(0, 0, 0.0), Decision::kQueue);
  for (std::uint32_t job = 2; job < 8; ++job) {
    EXPECT_EQ(strict.submit(job, 2, 0.0), Decision::kQueue);
  }
  double now = 0.0;
  std::uint32_t in_flight = 1;
  std::vector<std::uint32_t> strict_order;
  while (strict.queue_depth() > 0) {
    now += 1e6;
    strict.on_job_retired(in_flight);
    const auto next = strict.try_admit_queued(now);
    ASSERT_TRUE(next.has_value());
    strict_order.push_back(*next);
    in_flight = *next;
  }
  // FIFO within the high tier, the low job dead last.
  EXPECT_EQ(strict_order,
            (std::vector<std::uint32_t>{2, 3, 4, 5, 6, 7, 0}));

  // With aging at 3 levels per second, job 0's one-second head start in the
  // queue is worth 3 levels — more than the 2-level tier gap.
  serve::AdmissionController aging(
      {.max_jobs_in_flight = 1, .aging_rate_per_s = 3.0},
      std::vector<std::uint64_t>(8, 10));
  EXPECT_EQ(aging.submit(1, 2, 0.0), Decision::kAdmit);
  EXPECT_EQ(aging.submit(0, 0, 0.0), Decision::kQueue);
  for (std::uint32_t job = 2; job < 8; ++job) {
    EXPECT_EQ(aging.submit(job, 2, 1e6), Decision::kQueue);
  }
  aging.on_job_retired(1);
  // At t=2s: job 0 at 0 + 3x2 = 6 beats the high tier at 2 + 3x1 = 5.
  EXPECT_EQ(aging.try_admit_queued(2e6), 0u);
}

// ---------------------------------------------------------------------------
// Serving-loop integration.

using SchedulerFactory = std::function<std::unique_ptr<core::Scheduler>()>;

const std::vector<std::pair<std::string, SchedulerFactory>>& schedulers() {
  static const std::vector<std::pair<std::string, SchedulerFactory>> specs = {
      {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }},
      {"DMDAR", [] { return std::make_unique<sched::DmdaScheduler>(); }},
      {"DARTS+LUF", [] { return std::make_unique<core::DartsScheduler>(); }},
      {"mHFP", [] { return std::make_unique<sched::HfpScheduler>(); }},
  };
  return specs;
}

serve::ServeConfig batching_config(std::uint32_t max_in_flight = 2) {
  serve::ServeConfig config;
  config.arrival.mode = serve::ArrivalMode::kPoisson;
  // Mean gap 10 us against ~15 us/job of service: the run oversaturates,
  // the queue deepens, and every retirement admits a leader with fusable
  // waiters behind it.
  config.arrival.rate_jobs_per_s = 1e5;
  config.arrival.seed = 7;
  config.admission.max_jobs_in_flight = max_in_flight;
  config.engine.seed = 7;
  config.slo.enabled = true;
  config.slo.tiers = two_tiers();
  config.slo.batching = true;
  config.slo.max_batch = 3;
  config.slo.marginal_compute = 0.5;
  return config;
}

std::vector<serve::JobSpec> tiered_jobs(std::uint32_t n) {
  std::vector<serve::JobSpec> jobs(n);
  for (std::uint32_t j = 0; j < n; ++j) jobs[j].priority = (j % 2) * 2;
  return jobs;
}

TEST(SloServe, FusedMembersRetireExactlyOnceUnderEveryScheduler) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  for (const auto& [name, factory] : schedulers()) {
    const std::vector<serve::JobSpec> jobs = tiered_jobs(24);
    auto scheduler = factory();
    serve::ServeEngine engine(templates, jobs, test_platform(2, 100),
                              *scheduler, batching_config());
    sim::InvariantChecker checker({.fail_fast = false});
    Recorder recorder;
    engine.add_inspector(&checker);
    engine.add_inspector(&recorder);
    const serve::ServeResult result = engine.run();
    EXPECT_TRUE(checker.ok())
        << name << ": " << checker.report().error << "\n"
        << checker.report().excerpt;
    EXPECT_EQ(result.serving.jobs_completed, 24u) << name;
    EXPECT_GT(recorder.count(sim::InspectorEventKind::kJobsFused), 0u)
        << name;
    EXPECT_GT(recorder.count(sim::InspectorEventKind::kSuperTaskLaunched),
              0u)
        << name;
    // The one-retirement-per-job rule, counted straight off the stream:
    // fused members synthesize their completions through the leader.
    std::map<std::uint32_t, std::uint32_t> completions;
    for (const sim::InspectorEvent& event : recorder.events()) {
      if (event.kind == sim::InspectorEventKind::kJobComplete) {
        ++completions[event.id];
      }
    }
    EXPECT_EQ(completions.size(), 24u) << name;
    for (const auto& [job, times] : completions) {
      EXPECT_EQ(times, 1u) << name << " job " << job;
    }
  }
}

TEST(SloServe, UnfuseOnGpuLossReRunsRidersToCompletion) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<serve::JobSpec> jobs = tiered_jobs(24);
  sim::FaultPlan plan;
  plan.gpu_losses.push_back({120.0, 1});
  sim::FaultInjector injector(plan);
  sched::DmdaScheduler scheduler;
  serve::ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                            batching_config());
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  Recorder recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  const serve::ServeResult result = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  // Fusion happened, the loss split at least one in-flight batch, and every
  // job — rider or not — still retired exactly once on the survivor.
  EXPECT_GT(recorder.count(sim::InspectorEventKind::kJobsFused), 0u);
  EXPECT_GT(recorder.count(sim::InspectorEventKind::kBatchUnfused), 0u);
  EXPECT_EQ(result.serving.jobs_completed, 24u);
  EXPECT_EQ(result.metrics.faults.gpu_losses, 1u);
}

TEST(SloServe, EvictionVetoProtectsHighTierInputsUnderPressure) {
  // 45 bytes of GPU memory against 40-byte working sets: every second job
  // evicts. Protection pins the high tier's inputs; the checker enforces
  // that no vetoed data is ever evicted inside a protection window.
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<serve::JobSpec> jobs = tiered_jobs(16);
  serve::ServeConfig config;
  config.arrival.mode = serve::ArrivalMode::kPoisson;
  config.arrival.rate_jobs_per_s = 1e5;
  config.arrival.seed = 7;
  config.admission.max_jobs_in_flight = 2;
  config.engine.seed = 7;
  config.share_data = false;  // private copies: real eviction pressure
  config.slo.enabled = true;
  config.slo.tiers = two_tiers();
  config.slo.protect_min_priority = 2;
  sched::DmdaScheduler scheduler;
  serve::ServeEngine engine(templates, jobs, test_platform(2, 45), scheduler,
                            config);
  sim::InvariantChecker checker({.fail_fast = false});
  Recorder recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  const serve::ServeResult result = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(result.serving.jobs_completed, 16u);
  // Every protection window opened also closed (job retirement lifts the
  // veto), and the pressure actually routed around protected data.
  const std::uint64_t protects =
      recorder.count(sim::InspectorEventKind::kTierProtect);
  EXPECT_GT(protects, 0u);
  EXPECT_EQ(protects, recorder.count(sim::InspectorEventKind::kTierUnprotect));
  EXPECT_GT(recorder.count(sim::InspectorEventKind::kEvict), 0u);
}

TEST(SloServe, TierDeadlinesAndPerTierPercentilesFillTheReport) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<serve::JobSpec> jobs = tiered_jobs(20);
  serve::ServeConfig config;
  config.arrival.mode = serve::ArrivalMode::kClosedLoop;
  config.arrival.concurrency = 2;
  config.engine.seed = 7;
  config.slo.enabled = true;
  // The high tier's default deadline is impossible (1 us): all 10 high-tier
  // jobs miss; the low tier has no deadline and cannot miss.
  config.slo.tiers = two_tiers(/*hi_weight=*/4, /*hi_deadline=*/1.0);
  sched::DmdaScheduler scheduler;
  serve::ServeEngine engine(templates, jobs, test_platform(2, 100), scheduler,
                            config);
  const serve::ServeResult result = engine.run();
  ASSERT_TRUE(result.slo.enabled);
  ASSERT_EQ(result.slo.tiers, 2u);
  ASSERT_EQ(result.slo.per_tier.size(), 2u);
  const sim::RunReport::Slo::Tier& lo = result.slo.per_tier[0];
  const sim::RunReport::Slo::Tier& hi = result.slo.per_tier[1];
  EXPECT_EQ(lo.jobs + hi.jobs, 20u);
  EXPECT_EQ(lo.jobs, 10u);
  EXPECT_EQ(hi.jobs, 10u);
  EXPECT_EQ(lo.deadline_misses, 0u);
  EXPECT_EQ(hi.deadline_misses, 10u);
  EXPECT_EQ(result.serving.deadline_misses, 10u);  // tier default applied
  for (const sim::RunReport::Slo::Tier& tier : result.slo.per_tier) {
    EXPECT_GT(tier.p50_us, 0.0);
    EXPECT_LE(tier.p50_us, tier.p95_us);
    EXPECT_LE(tier.p95_us, tier.p99_us);
  }
}

TEST(SloServe, DartsTierBoostStreamsCleanlyAndNamesTheVariant) {
  core::DartsOptions options;
  options.tier_boost = 2.0;
  core::DartsScheduler boosted(options);
  EXPECT_NE(boosted.name().find("+tier"), std::string_view::npos);
  EXPECT_EQ(core::DartsScheduler().name().find("+tier"),
            std::string_view::npos);

  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<serve::JobSpec> jobs = tiered_jobs(20);
  serve::ServeConfig config = batching_config();
  serve::ServeEngine engine(templates, jobs, test_platform(2, 100), boosted,
                            config);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const serve::ServeResult result = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(result.serving.jobs_completed, 20u);
}

TEST(SloServe, PriorityAnnouncementsSurviveNodeDrainMidStream) {
  // mHFP (work-queue family) pops strictly by the announced effective
  // priorities; a node drain mid-stream must not strand a fused batch or a
  // protected job on the retiring node.
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<serve::JobSpec> jobs = tiered_jobs(40);
  serve::ServeConfig config = batching_config();
  // A 5 us mean gap keeps the admission queue deep enough that batches form
  // back to back once the initial loads land (first fusion near t=200 us).
  config.arrival.rate_jobs_per_s = 2e5;
  config.slo.protect_min_priority = 2;
  sched::HfpScheduler scheduler;
  serve::ServeEngine engine(templates, jobs, cluster_platform(4, 2),
                            scheduler, config);
  sim::InvariantChecker checker({.fail_fast = false});
  Recorder recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  // t=270 us sits inside the steady-state cadence of ~50 us batch waves, so
  // the fence always catches a fused super-task mid-flight.
  engine.engine().event_queue().schedule_at(
      270.0, [&engine] { engine.engine().begin_node_drain(1); });
  const serve::ServeResult result = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_EQ(result.serving.jobs_completed, 40u);
  EXPECT_GT(recorder.count(sim::InspectorEventKind::kJobsFused), 0u);
  EXPECT_EQ(recorder.count(sim::InspectorEventKind::kNodeDrained), 1u);
  // Drains split in-flight batches like losses do.
  EXPECT_GT(recorder.count(sim::InspectorEventKind::kBatchUnfused), 0u);
}

TEST(SloServe, DisabledSloWithEveryKnobSetIsByteIdentical) {
  const std::vector<core::TaskGraph> templates = {make_template()};
  const std::vector<serve::JobSpec> jobs = tiered_jobs(16);

  const auto run_json = [&](const slo::SloConfig& slo) {
    serve::ServeConfig config;
    config.arrival.mode = serve::ArrivalMode::kPoisson;
    config.arrival.rate_jobs_per_s = 2e4;
    config.arrival.seed = 7;
    config.admission.max_jobs_in_flight = 2;
    config.engine.seed = 7;
    config.slo = slo;
    sched::DmdaScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, test_platform(2, 100),
                              scheduler, config);
    sim::RunReportCollector collector(
        {.context = "slo-identity", .collect_trace = true});
    engine.add_inspector(&collector);
    serve::ServeResult result = engine.run();
    sim::RunReport report = collector.report();
    report.serving = result.serving;
    return sim::run_report_to_json(report);
  };

  slo::SloConfig armed_but_off;
  armed_but_off.enabled = false;  // the master switch rules them all
  armed_but_off.tiers = two_tiers(4, 1.0);
  armed_but_off.protect_min_priority = 2;
  armed_but_off.batching = true;
  armed_but_off.fusion_window_us = 50.0;
  armed_but_off.max_batch = 8;
  armed_but_off.marginal_compute = 0.1;

  const std::string plain = run_json(slo::SloConfig{});
  EXPECT_EQ(plain, run_json(armed_but_off));
  // And the section stays dormant in the serialized report.
  EXPECT_NE(plain.find("\"slo\":{\"enabled\":false"), std::string::npos);
}

}  // namespace
}  // namespace mg::slo
