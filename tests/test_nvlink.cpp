// Inter-GPU (NVLink) transfer extension: when a requested data is resident
// on a peer GPU, the engine pulls it over the peer link instead of the host
// bus (Section VI future work of the paper).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/offline_model.hpp"
#include "analysis/validate.hpp"
#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::sim {
namespace {

using core::DataId;
using core::TaskId;

core::Platform nvlink_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;                  // 1 flop = 1 us
  platform.bus_bandwidth_bytes_per_s = 1e6;    // host: 1 byte = 1 us
  platform.bus_latency_us = 0.0;
  platform.nvlink_enabled = true;
  platform.nvlink_bandwidth_bytes_per_s = 4e6;  // peers: 4x faster
  platform.nvlink_latency_us = 0.0;
  return platform;
}

TEST(Nvlink, PeerCopyInsteadOfSecondHostLoad) {
  // Both GPUs need d; gpu0 loads it from host first, gpu1 then pulls the
  // replica over NVLink.
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(100);
  builder.add_task(50.0, {d});
  builder.add_task(50.0, {d});
  const core::TaskGraph graph = builder.build();

  sched::FixedOrderScheduler scheduler({{0}, {1}});
  EngineConfig config;
  config.record_trace = true;
  RuntimeEngine engine(graph, nvlink_platform(2, 1000), scheduler, config);
  const core::RunMetrics metrics = engine.run();

  EXPECT_EQ(metrics.total_loads(), 1u);            // one host load (gpu0)
  EXPECT_EQ(metrics.total_peer_loads(), 1u);       // one peer copy (gpu1)
  EXPECT_EQ(metrics.per_gpu[0].loads, 1u);
  EXPECT_EQ(metrics.per_gpu[1].peer_loads, 1u);
  EXPECT_EQ(metrics.per_gpu[1].bytes_from_peers, 100u);

  // Timeline: host load [0,100] on gpu0; gpu1's request misses at t=0 (d is
  // absent everywhere) so it also goes over the host bus... unless it was
  // requested after gpu0's load landed. Either way the run must validate.
  const auto validation = analysis::validate_trace(
      graph, nvlink_platform(2, 1000), engine.trace());
  EXPECT_TRUE(validation.ok) << validation.error;
}

TEST(Nvlink, PeerCopyIsFasterThanHostReload) {
  // gpu1's pull of the 100-byte replica takes 25us on the 4 MB/s peer link
  // versus 100us over the host bus.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(100);
  const DataId d1 = builder.add_data(100);
  builder.add_task(50.0, {d0});   // gpu0
  builder.add_task(50.0, {d1});   // gpu0 (keeps gpu0 busy)
  builder.add_task(50.0, {d0});   // gpu1: d0 resident on gpu0 by then
  const core::TaskGraph graph = builder.build();

  auto run = [&graph](bool nvlink) {
    core::Platform platform = nvlink_platform(2, 1000);
    platform.nvlink_enabled = nvlink;
    std::vector<std::vector<TaskId>> orders{{0, 1}, {2}};
    sched::FixedOrderScheduler scheduler(orders);
    RuntimeEngine engine(graph, platform, scheduler);
    return engine.run();
  };

  const core::RunMetrics with = run(true);
  const core::RunMetrics without = run(false);
  // gpu1's task waits for d0: host path loads d0 twice over the shared bus;
  // the peer path copies from gpu0 as soon as the replica landed.
  EXPECT_LT(with.makespan_us, without.makespan_us);
  EXPECT_EQ(with.total_peer_loads(), 1u);
  EXPECT_EQ(without.total_peer_loads(), 0u);
  EXPECT_EQ(without.total_loads(), 3u);
  EXPECT_EQ(with.total_loads(), 2u);
}

TEST(Nvlink, SourceReplicaIsPinnedDuringCopy) {
  // Tiny memory on the source: while gpu1 copies d0 from gpu0, gpu0 cannot
  // evict d0 even though it needs room for its next input.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(100);
  const DataId d1 = builder.add_data(100);
  builder.add_task(50.0, {d0});    // gpu0
  builder.add_task(5000.0, {d0});  // gpu1 pulls the replica
  builder.add_task(50.0, {d1});    // gpu0 must evict d0 for d1 — only after
                                   // the copy completes
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> orders{{0, 2}, {1}};
  sched::FixedOrderScheduler scheduler(orders);
  EngineConfig config;
  config.record_trace = true;
  config.pipeline_depth = 1;
  // gpu0 memory fits exactly one data item: d1 requires evicting d0 — but
  // the (slow) peer copy of d0 to gpu1 is still in flight when gpu0 wants
  // the room, so the eviction must wait for the copy to finish.
  core::Platform platform = nvlink_platform(2, 100);
  platform.nvlink_bandwidth_bytes_per_s = 1e6;  // copy takes 100us
  RuntimeEngine engine(graph, platform, scheduler, config);
  const core::RunMetrics metrics = engine.run();

  EXPECT_EQ(metrics.per_gpu[1].peer_loads, 1u);
  const auto validation = analysis::validate_trace(
      graph, nvlink_platform(2, 100), engine.trace());
  EXPECT_TRUE(validation.ok) << validation.error;
  // All three tasks ran.
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, 2u);
  EXPECT_EQ(metrics.per_gpu[1].tasks_executed, 1u);
}

TEST(Nvlink, DisabledPlatformNeverUsesPeers) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 6, .data_bytes = 10});
  core::Platform platform = nvlink_platform(2, 500);
  platform.nvlink_enabled = false;
  sched::EagerScheduler scheduler;
  RuntimeEngine engine(graph, platform, scheduler);
  const core::RunMetrics metrics = engine.run();
  EXPECT_EQ(metrics.total_peer_loads(), 0u);
  EXPECT_EQ(metrics.total_bytes_from_peers(), 0u);
}

TEST(Nvlink, ReducesHostTrafficOnSharedWorkload) {
  // 2D matmul on 4 GPUs: without NVLink every GPU loads rows/columns from
  // the host; with NVLink most replicas come from peers.
  const core::TaskGraph graph = work::make_matmul_2d({.n = 10, .data_bytes = 10});
  auto run = [&graph](bool nvlink) {
    core::Platform platform = nvlink_platform(4, 400);
    platform.nvlink_enabled = nvlink;
    core::DartsScheduler darts;
    RuntimeEngine engine(graph, platform, darts, {.seed = 3});
    return engine.run();
  };
  const core::RunMetrics with = run(true);
  const core::RunMetrics without = run(false);
  EXPECT_LT(with.total_bytes_loaded(), without.total_bytes_loaded());
  EXPECT_GT(with.total_bytes_from_peers(), 0u);
  // Conservation: every byte a GPU received came from somewhere.
  EXPECT_GE(with.total_bytes_loaded() + with.total_bytes_from_peers(),
            analysis::bytes_lower_bound(graph));
}

TEST(Nvlink, AllSchedulersCompleteWithPeersEnabled) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 8, .data_bytes = 10});
  core::Platform platform = nvlink_platform(4, 200);
  for (int kind = 0; kind < 2; ++kind) {
    std::unique_ptr<core::Scheduler> scheduler;
    if (kind == 0) {
      scheduler = std::make_unique<sched::EagerScheduler>();
    } else {
      scheduler = std::make_unique<core::DartsScheduler>();
    }
    EngineConfig config;
    config.record_trace = true;
    RuntimeEngine engine(graph, platform, *scheduler, config);
    const core::RunMetrics metrics = engine.run();
    std::uint64_t executed = 0;
    for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
    EXPECT_EQ(executed, graph.num_tasks());
    const auto validation =
        analysis::validate_trace(graph, platform, engine.trace());
    EXPECT_TRUE(validation.ok) << validation.error;
  }
}

}  // namespace
}  // namespace mg::sim
