// Property-style tests: invariants that must hold across seeds, workloads
// and memory pressures (TEST_P sweeps).
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "analysis/offline_model.hpp"
#include "core/darts.hpp"
#include "hypergraph/partitioner.hpp"
#include "hypergraph/quality.hpp"
#include "sched/fixed_order.hpp"
#include "sim/engine.hpp"
#include "workloads/workloads.hpp"

namespace mg {
namespace {

// ---------------------------------------------------------------------------
// Determinism: identical (seed, workload, scheduler) -> identical metrics.
// ---------------------------------------------------------------------------

class DeterminismTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismTest, DartsRunsAreReproducible) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 8, .data_bytes = 14 * core::kMB});
  const core::Platform platform =
      core::make_v100_platform(2, 120 * core::kMB);

  auto run_once = [&](std::uint64_t seed) {
    core::DartsScheduler darts;
    sim::EngineConfig config;
    config.seed = seed;
    sim::RuntimeEngine engine(graph, platform, darts, config);
    return engine.run();
  };

  const core::RunMetrics a = run_once(GetParam());
  const core::RunMetrics b = run_once(GetParam());
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.total_loads(), b.total_loads());
  EXPECT_EQ(a.total_evictions(), b.total_evictions());
  for (std::size_t gpu = 0; gpu < a.per_gpu.size(); ++gpu) {
    EXPECT_EQ(a.per_gpu[gpu].tasks_executed, b.per_gpu[gpu].tasks_executed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         testing::Values(1, 7, 42, 1234, 99999));

// ---------------------------------------------------------------------------
// Dependency-gated runs are equally reproducible: the DAG release order,
// the successor-aware DARTS tie-breaks and the ready-frontier bookkeeping
// must all be driven by the seeded RNG, never by incidental state.
// ---------------------------------------------------------------------------

class DagDeterminismTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DagDeterminismTest, DependencyGatedRunsAreReproducible) {
  const core::TaskGraph graph =
      work::make_cholesky_tasks({.n = 10, .with_dependencies = true});
  const core::Platform platform =
      core::make_v100_platform(2, 120 * core::kMB);

  auto run_once = [&](std::uint64_t seed) {
    core::DartsScheduler darts{core::DartsOptions{.use_luf = true}};
    sim::EngineConfig config;
    config.seed = seed;
    sim::RuntimeEngine engine(graph, platform, darts, config);
    return engine.run();
  };

  const core::RunMetrics a = run_once(GetParam());
  const core::RunMetrics b = run_once(GetParam());
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.total_loads(), b.total_loads());
  EXPECT_EQ(a.total_evictions(), b.total_evictions());
  for (std::size_t gpu = 0; gpu < a.per_gpu.size(); ++gpu) {
    EXPECT_EQ(a.per_gpu[gpu].tasks_executed, b.per_gpu[gpu].tasks_executed);
  }
  // The DAG's serial spine is a hard floor: no run can finish faster than
  // critical-path-many back-to-back executions of even the cheapest kernel.
  double min_task_us = std::numeric_limits<double>::infinity();
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    min_task_us = std::min(
        min_task_us, graph.task_flops(task) / (platform.gpu_gflops * 1e3));
  }
  EXPECT_GE(a.makespan_us, graph.critical_path_length() * min_task_us);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagDeterminismTest,
                         testing::Values(1, 7, 42, 1234));

// ---------------------------------------------------------------------------
// Belady never loads more than LRU for the same schedule.
// ---------------------------------------------------------------------------

class BeladyVsLruTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BeladyVsLruTest, BeladyIsAtMostLru) {
  const core::TaskGraph graph = work::make_random_bipartite(
      {.num_tasks = 120, .num_data = 30, .min_inputs = 1, .max_inputs = 3,
       .data_bytes = 1, .seed = GetParam()});
  analysis::Schedule schedule{{}};
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    schedule[0].push_back(task);
  }
  for (std::uint64_t memory : {4, 6, 10, 30}) {
    const auto lru = analysis::replay_schedule(graph, schedule, memory,
                                               analysis::ReplayEviction::kLru);
    const auto belady = analysis::replay_schedule(
        graph, schedule, memory, analysis::ReplayEviction::kBelady);
    EXPECT_LE(belady.total_loads, lru.total_loads) << "M=" << memory;
    EXPECT_GE(belady.total_loads, analysis::loads_lower_bound(graph));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyVsLruTest,
                         testing::Values(3, 11, 29, 63, 101, 500));

// ---------------------------------------------------------------------------
// Simulator/offline-model cross-validation: for the same fixed order the
// engine's realized loads must closely track the Section-III LRU replay.
// Exact equality is not attainable under memory pressure — the engine
// reserves capacity at fetch-request time and its eviction opportunities
// follow transfer completions and pin releases, which a position-based
// replay cannot express — but the counts must stay within a few percent,
// and must match exactly when memory is unconstrained (every data loaded
// exactly once on the GPU that uses it).
// ---------------------------------------------------------------------------

class EngineReplayEquivalenceTest
    : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineReplayEquivalenceTest, LoadsTrackOfflineModel) {
  const core::TaskGraph graph = work::make_random_bipartite(
      {.num_tasks = 60, .num_data = 20, .min_inputs = 1, .max_inputs = 3,
       .data_bytes = 10 * core::kMB, .seed = GetParam()});

  std::vector<core::TaskId> order(graph.num_tasks());
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    order[task] = task;
  }

  auto engine_loads = [&](std::uint64_t memory_bytes) {
    sched::FixedOrderScheduler scheduler({order});
    sim::EngineConfig config;
    config.pipeline_depth = 1;
    core::Platform platform = core::make_v100_platform(1, memory_bytes);
    sim::RuntimeEngine engine(graph, platform, scheduler, config);
    return engine.run().total_loads();
  };

  // Constrained: within 5% of the pipelined-LRU replay.
  const std::uint64_t constrained = 70 * core::kMB;
  const auto replay = analysis::replay_schedule(
      graph, {order}, constrained, analysis::ReplayEviction::kLruPipelined);
  const double engine_count = static_cast<double>(engine_loads(constrained));
  const double replay_count = static_cast<double>(replay.total_loads);
  EXPECT_NEAR(engine_count, replay_count, 0.05 * replay_count);

  // Unconstrained: exactly one load per used data item on both sides.
  const std::uint64_t roomy = 500 * core::kMB;
  const auto roomy_replay = analysis::replay_schedule(
      graph, {order}, roomy, analysis::ReplayEviction::kLru);
  EXPECT_EQ(engine_loads(roomy), roomy_replay.total_loads);
  EXPECT_EQ(roomy_replay.total_loads, analysis::loads_lower_bound(graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineReplayEquivalenceTest,
                         testing::Values(2, 13, 77, 204));

// ---------------------------------------------------------------------------
// LUF vs plain-LRU DARTS under memory pressure: LUF must not transfer more
// (this is the paper's central claim, Section V-B).
// ---------------------------------------------------------------------------

class LufBenefitTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LufBenefitTest, LufDoesNotIncreaseTransfers) {
  // The paper's single-GPU regime: 500 MB of memory (~35 data slots) and a
  // working set about twice that — past the "B fits in memory" line.
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 36, .data_bytes = 14 * core::kMB});
  const core::Platform platform = core::make_v100_platform(1);

  auto run_with = [&](bool use_luf) {
    core::DartsScheduler darts{core::DartsOptions{.use_luf = use_luf}};
    sim::EngineConfig config;
    config.seed = GetParam();
    sim::RuntimeEngine engine(graph, platform, darts, config);
    return engine.run().total_bytes_loaded();
  };

  // Allow a small tolerance: LUF is a heuristic, not a proof, but under this
  // much pressure it must not lose by more than a few percent.
  EXPECT_LE(static_cast<double>(run_with(true)),
            1.10 * static_cast<double>(run_with(false)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LufBenefitTest, testing::Values(5, 21, 84));

// ---------------------------------------------------------------------------
// Partitioner balance holds across seeds and part counts.
// ---------------------------------------------------------------------------

struct PartitionCase {
  std::uint64_t seed;
  std::uint32_t parts;
};

class PartitionBalanceTest : public testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionBalanceTest, BalanceWithinTolerance) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 12, .data_bytes = 10});
  const hyper::Hypergraph hypergraph = hyper::hypergraph_from_task_graph(graph);
  hyper::PartitionerConfig config;
  config.num_parts = GetParam().parts;
  config.seed = GetParam().seed;
  config.imbalance = 0.02;
  const auto part = hyper::partition_hypergraph(hypergraph, config);
  const auto quality =
      hyper::evaluate_partition(hypergraph, part, config.num_parts);
  // Recursive bisection compounds per-level slack; keep a conservative cap.
  EXPECT_LE(quality.imbalance, 0.15)
      << "seed=" << GetParam().seed << " parts=" << GetParam().parts;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndParts, PartitionBalanceTest,
    testing::Values(PartitionCase{1, 2}, PartitionCase{2, 2},
                    PartitionCase{3, 3}, PartitionCase{4, 4},
                    PartitionCase{5, 4}, PartitionCase{6, 8}));

// ---------------------------------------------------------------------------
// Every DARTS variant completes under extreme memory pressure (barely more
// than one task footprint).
// ---------------------------------------------------------------------------

class TinyMemoryTest : public testing::TestWithParam<int> {};

TEST_P(TinyMemoryTest, DartsVariantsSurviveThrashing) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 6, .data_bytes = 14 * core::kMB});
  const core::Platform platform =
      core::make_v100_platform(1, 30 * core::kMB);  // footprint is 28 MB

  core::DartsOptions options;
  switch (GetParam()) {
    case 0: options = {.use_luf = false}; break;
    case 1: options = {.use_luf = true}; break;
    case 2: options = {.use_luf = true, .three_inputs = true}; break;
    case 3: options = {.use_luf = true, .opti = true}; break;
    case 4: options = {.use_luf = true, .scan_threshold = 3}; break;
    default: FAIL();
  }
  core::DartsScheduler darts(options);
  sim::RuntimeEngine engine(graph, platform, darts);
  const core::RunMetrics metrics = engine.run();
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, graph.num_tasks());
}

INSTANTIATE_TEST_SUITE_P(Variants, TinyMemoryTest, testing::Range(0, 5));

}  // namespace
}  // namespace mg
