// Cluster subsystem tests: hierarchical scheduling (inter-node partition,
// id translation, cross-node stealing, single-node identity), the
// locality-aware dynamic policy's node-distance cost model, the engine's
// remote-fetch / host-cache machinery (network byte accounting, bounded
// cache eviction), and the schema-5 run report's bit-identical guarantee
// when num_nodes == 1.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/hierarchical.hpp"
#include "cluster/locality.hpp"
#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "workloads/matmul2d.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;

core::Platform cluster_platform(std::uint32_t gpus, std::uint32_t nodes,
                                std::uint64_t memory = 1000) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.num_nodes = nodes;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

/// MemoryView stub with an explicit set of resident data.
class StubMemory final : public core::MemoryView {
 public:
  explicit StubMemory(std::set<DataId> present = {})
      : present_(std::move(present)) {}
  [[nodiscard]] bool is_present(DataId data) const override {
    return present_.contains(data);
  }
  [[nodiscard]] bool is_present_or_fetching(DataId data) const override {
    return present_.contains(data);
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override { return 1000; }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return 10 * present_.size();
  }

 private:
  std::set<DataId> present_;
};

cluster::InnerSchedulerFactory eager_factory() {
  return [] { return std::make_unique<sched::EagerScheduler>(); };
}

TEST(Hierarchical, NameWrapsTheInnerScheduler) {
  cluster::HierarchicalScheduler scheduler(eager_factory());
  EXPECT_EQ(scheduler.name(), "hier(EAGER)");
}

TEST(Hierarchical, PartitionCoversEveryTaskAcrossNodes) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 4, .data_bytes = 10});
  cluster::HierarchicalScheduler scheduler(eager_factory());
  scheduler.prepare(graph, cluster_platform(4, 2), 42);

  const std::vector<std::uint32_t>& task_node = scheduler.task_node();
  ASSERT_EQ(task_node.size(), graph.num_tasks());
  std::vector<std::uint32_t> per_node(2, 0);
  for (const std::uint32_t node : task_node) {
    ASSERT_LT(node, 2u);
    ++per_node[node];
  }
  // The partitioner balances by the per-node GPU share: both halves get
  // work.
  EXPECT_GT(per_node[0], 0u);
  EXPECT_GT(per_node[1], 0u);
}

TEST(Hierarchical, PopsEveryTaskExactlyOnceAndStealsWhenANodeDrains) {
  // 4 independent tasks over 4 distinct data, 4 GPUs on 2 nodes. Popping
  // everything through gpu0 drains node 0's sub-schedule, after which the
  // remaining tasks arrive by cross-node stealing from node 1.
  core::TaskGraphBuilder builder;
  for (int i = 0; i < 4; ++i) {
    const DataId d = builder.add_data(10);
    builder.add_task(1.0, {d});
  }
  const core::TaskGraph graph = builder.build();

  cluster::HierarchicalScheduler scheduler(eager_factory());
  scheduler.prepare(graph, cluster_platform(4, 2), 42);

  StubMemory memory;
  std::set<TaskId> popped;
  for (int i = 0; i < 4; ++i) {
    const TaskId task = scheduler.pop_task(0, memory);
    ASSERT_NE(task, core::kInvalidTask);
    EXPECT_TRUE(popped.insert(task).second) << "task popped twice";
    scheduler.notify_task_complete(0, task);
  }
  EXPECT_EQ(popped.size(), 4u);
  EXPECT_EQ(scheduler.pop_task(0, memory), core::kInvalidTask);
  // Node 1 held a (balanced) share of the partition; gpu0 stole it.
  EXPECT_GT(scheduler.steal_count(), 0u);
}

TEST(Hierarchical, StealingOffStrandsTheDrainedNode) {
  core::TaskGraphBuilder builder;
  for (int i = 0; i < 4; ++i) {
    const DataId d = builder.add_data(10);
    builder.add_task(1.0, {d});
  }
  const core::TaskGraph graph = builder.build();

  cluster::HierarchicalScheduler scheduler(eager_factory(), {.steal = false});
  scheduler.prepare(graph, cluster_platform(4, 2), 42);

  StubMemory memory;
  int node0_tasks = 0;
  while (scheduler.pop_task(0, memory) != core::kInvalidTask) ++node0_tasks;
  EXPECT_GT(node0_tasks, 0);
  EXPECT_LT(node0_tasks, 4);  // node 1's share stays put
  EXPECT_EQ(scheduler.steal_count(), 0u);
}

TEST(Hierarchical, EndToEndTwoNodeRunIsInvariantClean) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 6});
  const core::Platform platform = [] {
    core::Platform p = core::make_v100_platform(4, 200 * core::kMB);
    p.num_nodes = 2;
    return p;
  }();

  cluster::HierarchicalScheduler scheduler(eager_factory());
  sim::RuntimeEngine engine(graph, platform, scheduler);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);

  const core::RunMetrics metrics = engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error << "\nlast events:\n"
                            << checker.report().excerpt;

  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());

  const sim::RunReport report = collector.report();
  ASSERT_TRUE(report.cluster.enabled);
  ASSERT_EQ(report.cluster.per_node.size(), 2u);
  EXPECT_EQ(report.cluster.per_node[0].gpu_begin, 0u);
  EXPECT_EQ(report.cluster.per_node[0].gpu_end, 2u);
  EXPECT_EQ(report.cluster.per_node[1].gpu_begin, 2u);
  EXPECT_EQ(report.cluster.per_node[1].gpu_end, 4u);
  std::uint64_t node_tasks = 0;
  for (const auto& node : report.cluster.per_node) {
    node_tasks += node.tasks_executed;
  }
  EXPECT_EQ(node_tasks, graph.num_tasks());
  // The matmul's data is spread round-robin over both nodes' host
  // memories: some inputs had to cross the network.
  EXPECT_GT(report.cluster.network_bytes, 0u);
  EXPECT_EQ(report.cluster.host_cache_fills, report.cluster.network_transfers);
}

TEST(Hierarchical, SingleNodeDelegatesToTheInnerScheduler) {
  // On a 1-node platform the wrapper is the identity: same pop order as a
  // bare EAGER over the same graph.
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 2, .data_bytes = 10});
  cluster::HierarchicalScheduler wrapped(eager_factory());
  sched::EagerScheduler bare;
  wrapped.prepare(graph, cluster_platform(2, 1), 42);
  bare.prepare(graph, cluster_platform(2, 1), 42);
  EXPECT_TRUE(wrapped.task_node().empty());

  StubMemory memory;
  for (TaskId i = 0; i < graph.num_tasks(); ++i) {
    EXPECT_EQ(wrapped.pop_task(i % 2, memory), bare.pop_task(i % 2, memory));
  }
}

TEST(Locality, PrefersTheTaskWhoseDataIsHomedOnTheAskingNode) {
  // d0 homes on node 0, d1 on node 1 (round-robin). A node-1 GPU asking
  // first should take the d1 task even though the d0 task was submitted
  // first.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  const TaskId t0 = builder.add_task(1.0, {d0});
  const TaskId t1 = builder.add_task(1.0, {d1});
  const core::TaskGraph graph = builder.build();

  cluster::LocalityScheduler scheduler;
  scheduler.prepare(graph, cluster_platform(2, 2), 0);
  StubMemory memory;
  EXPECT_EQ(scheduler.pop_task(1, memory), t1);  // gpu1 = node 1
  EXPECT_EQ(scheduler.pop_task(0, memory), t0);
  EXPECT_EQ(scheduler.pop_task(0, memory), core::kInvalidTask);
}

TEST(Locality, ResidentDataBeatsSubmissionOrder) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  builder.add_task(1.0, {d0});
  const TaskId t1 = builder.add_task(1.0, {d1});
  const core::TaskGraph graph = builder.build();

  cluster::LocalityScheduler scheduler;
  scheduler.prepare(graph, cluster_platform(1, 1), 0);
  // d1 is already on the GPU: its task costs nothing and pops first.
  StubMemory memory({d1});
  EXPECT_EQ(scheduler.pop_task(0, memory), t1);
}

TEST(Locality, LearnsNodeLocalityFromObservedLoads) {
  // Without observation, a node-0 pop would prefer the node-0-homed datum's
  // task. Seeing the remote datum land on a node-0 GPU marks it node-local
  // (it now sits in node 0's host cache), flipping the preference.
  core::TaskGraphBuilder builder;
  builder.add_data(10);  // id 0, unused: keeps the next id odd
  const DataId remote = builder.add_data(10);  // id 1 -> homed on node 1
  const DataId local = builder.add_data(10);   // id 2 -> homed on node 0
  const TaskId remote_task = builder.add_task(1.0, {remote});
  const TaskId local_task = builder.add_task(1.0, {local});
  const core::TaskGraph graph = builder.build();

  cluster::LocalityScheduler scheduler;
  scheduler.prepare(graph, cluster_platform(2, 2), 0);
  // Node 0's GPU observed the remote datum landing: node 0 can now serve
  // it from its host cache, so both tasks cost one PCI hop and submission
  // order wins — the remote task pops first despite its off-node home.
  scheduler.notify_data_loaded(0, remote);
  StubMemory memory;
  EXPECT_EQ(scheduler.pop_task(0, memory), remote_task);
  EXPECT_EQ(scheduler.pop_task(0, memory), local_task);
}

TEST(Engine, RemoteFetchPaysTheNetworkOnceAndFillsTheHostCache) {
  // Six tasks all read d1 (10 bytes, homed on node 1). Node 0's GPU runs
  // some of them, so node 0 fetches d1 over the network exactly once
  // (waiter dedup), fills its host cache, and serves later waiters
  // locally.
  core::TaskGraphBuilder builder;
  builder.add_data(10);  // d0: keeps d1's id odd -> homed on node 1
  const DataId d1 = builder.add_data(10);
  for (int i = 0; i < 6; ++i) builder.add_task(1.0, {d1});
  const core::TaskGraph graph = builder.build();

  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, cluster_platform(2, 2), scheduler);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  (void)engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error;

  const sim::RunReport report = collector.report();
  ASSERT_TRUE(report.cluster.enabled);
  EXPECT_EQ(report.cluster.network_transfers, 1u);
  EXPECT_EQ(report.cluster.network_bytes, 10u);
  EXPECT_EQ(report.cluster.host_cache_fills, 1u);
  EXPECT_EQ(report.cluster.per_node[0].remote_fetches, 1u);
  EXPECT_EQ(report.cluster.per_node[1].remote_fetches, 0u);
  EXPECT_EQ(report.cluster.host_cache_evictions, 0u);
}

TEST(Engine, BoundedHostCacheEvictsUnderPressure) {
  // Node 0's host cache holds one 10-byte item; its GPU keeps fetching
  // distinct node-1-homed data, so every fill past the first evicts.
  core::TaskGraphBuilder builder;
  std::vector<DataId> remote;
  for (int i = 0; i < 8; ++i) {
    const DataId d = builder.add_data(10);
    if (d % 2 == 1) remote.push_back(d);  // homed on node 1
  }
  for (int t = 0; t < 8; ++t) {
    builder.add_task(1.0, {remote[static_cast<std::size_t>(t) % 4]});
  }
  const core::TaskGraph graph = builder.build();

  core::Platform platform = cluster_platform(2, 2);
  platform.host_memory_bytes = 10;
  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, platform, scheduler);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  (void)engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error;

  const sim::RunReport report = collector.report();
  // gpu0 executed several of the 8 tasks; each distinct remote input past
  // the first pushed the previous one out of the one-slot cache.
  EXPECT_GT(report.cluster.host_cache_evictions, 0u);
  EXPECT_EQ(report.cluster.host_cache_fills,
            report.cluster.network_transfers);
}

TEST(RunReport, SingleNodeReportIsBitIdenticalWithClusterKnobsSet) {
  // Strict generalization: num_nodes == 1 with every cluster knob set must
  // serialize byte-for-byte like the plain single-machine platform.
  const core::TaskGraph graph = work::make_matmul_2d({.n = 4});
  const auto run_to_json = [&graph](const core::Platform& platform) {
    sched::EagerScheduler scheduler;
    sim::RuntimeEngine engine(graph, platform, scheduler);
    sim::RunReportCollector collector;
    engine.add_inspector(&collector);
    (void)engine.run();
    return sim::run_report_to_json(collector.report());
  };

  const core::Platform plain = core::make_v100_platform(2, 200 * core::kMB);
  core::Platform knobs = plain;
  knobs.num_nodes = 1;
  knobs.host_memory_bytes = 64 * core::kMB;
  knobs.net_bandwidth_bytes_per_s = 1e9;
  knobs.net_latency_us = 500.0;
  EXPECT_EQ(run_to_json(plain), run_to_json(knobs));
}

TEST(RunReport, ClusterSectionSerializesPerNodeCounters) {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 4});
  core::Platform platform = core::make_v100_platform(4, 200 * core::kMB);
  platform.num_nodes = 2;

  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, platform, scheduler);
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  (void)engine.run();

  const std::string json = sim::run_report_to_json(collector.report());
  EXPECT_NE(json.find("\"cluster\":{\"enabled\":true,\"num_nodes\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"network_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"remote_fetches\":"), std::string::npos);
  EXPECT_NE(json.find("\"steals\":"), std::string::npos);
}

}  // namespace
}  // namespace mg
