#include "sched/hfp_packing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/task_graph.hpp"
#include "util/rng.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::sched {
namespace {

using core::DataId;
using core::TaskId;

/// Union-of-inputs footprint of an ordered task list.
std::uint64_t footprint(const core::TaskGraph& graph,
                        const std::vector<TaskId>& tasks) {
  std::set<DataId> inputs;
  for (TaskId task : tasks) {
    for (DataId data : graph.inputs(task)) inputs.insert(data);
  }
  std::uint64_t bytes = 0;
  for (DataId data : inputs) bytes += graph.data_size(data);
  return bytes;
}

double load(const core::TaskGraph& graph, const std::vector<TaskId>& tasks) {
  double flops = 0.0;
  for (TaskId task : tasks) flops += graph.task_flops(task);
  return flops;
}

void expect_partition_complete(const core::TaskGraph& graph,
                               const std::vector<std::vector<TaskId>>& parts) {
  std::vector<int> seen(graph.num_tasks(), 0);
  for (const auto& part : parts) {
    for (TaskId task : part) ++seen[task];
  }
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    EXPECT_EQ(seen[task], 1) << "task " << task;
  }
}

TEST(HfpPackages, EveryTaskExactlyOnce) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 6, .data_bytes = 10});
  const auto parts = hfp_build_packages(graph, 2, /*memory=*/60);
  ASSERT_EQ(parts.size(), 2u);
  expect_partition_complete(graph, parts);
}

TEST(HfpPackages, SingleParkIsWholeTaskSet) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 4, .data_bytes = 10});
  const auto parts = hfp_build_packages(graph, 1, 1000);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), graph.num_tasks());
}

TEST(HfpPackages, Phase1RespectsMemoryBound) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 6, .data_bytes = 10});
  HfpStats stats;
  // Memory fits 4 data items: packages at the end of phase 1 must have
  // footprint <= 40.
  const std::uint64_t memory = 40;
  // Build many packages (num_parts=1 would force phase-2 merges beyond the
  // bound, so ask for the phase-1 fixed point by requesting a huge K).
  const auto parts =
      hfp_build_packages(graph, graph.num_tasks(), memory, &stats);
  for (const auto& part : parts) {
    if (part.empty()) continue;
    EXPECT_LE(footprint(graph, part), memory);
  }
  EXPECT_GE(stats.phase1_packages, 1u);
}

TEST(HfpPackages, GroupsTasksSharingData) {
  // Two disjoint clusters of tasks; with K=2 and roomy memory each package
  // must be one cluster.
  core::TaskGraphBuilder builder;
  const DataId a = builder.add_data(10);
  const DataId b = builder.add_data(10);
  for (int i = 0; i < 4; ++i) builder.add_task(1.0, {a});
  for (int i = 0; i < 4; ++i) builder.add_task(1.0, {b});
  const core::TaskGraph graph = builder.build();

  const auto parts = hfp_build_packages(graph, 2, 1000);
  ASSERT_EQ(parts.size(), 2u);
  expect_partition_complete(graph, parts);
  for (const auto& part : parts) {
    ASSERT_EQ(part.size(), 4u);
    // All tasks of a package read the same single data item.
    const DataId common = graph.inputs(part[0])[0];
    for (TaskId task : part) EXPECT_EQ(graph.inputs(task)[0], common);
  }
}

TEST(HfpBalance, EqualizesLoads) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 12; ++i) builder.add_task(1.0, {d});
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> parts(2);
  for (TaskId task = 0; task < 12; ++task) parts[0].push_back(task);
  hfp_balance_loads(graph, parts);
  EXPECT_EQ(parts[0].size(), 6u);
  EXPECT_EQ(parts[1].size(), 6u);
}

TEST(HfpBalance, MovesFromTailOfLargest) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {d});
  const core::TaskGraph graph = builder.build();

  std::vector<std::vector<TaskId>> parts(2);
  for (TaskId task = 0; task < 8; ++task) parts[0].push_back(task);
  hfp_balance_loads(graph, parts);
  // Head of the donor package is untouched; the moved tasks are its tail.
  EXPECT_EQ(parts[0], (std::vector<TaskId>{0, 1, 2, 3}));
  std::vector<TaskId> sorted_tail = parts[1];
  std::sort(sorted_tail.begin(), sorted_tail.end());
  EXPECT_EQ(sorted_tail, (std::vector<TaskId>{4, 5, 6, 7}));
}

TEST(HfpBalance, HeterogeneousFlopsBalanceWithinOneTask) {
  const core::TaskGraph graph = work::make_cholesky_tasks({.n = 6});
  auto parts = hfp_partition(graph, 4, 100 * core::kMB);
  double max_load = 0.0;
  double max_task = 0.0;
  for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
    max_task = std::max(max_task, graph.task_flops(task));
  }
  for (const auto& part : parts) max_load = std::max(max_load, load(graph, part));
  const double average = graph.total_flops() / 4.0;
  EXPECT_LE(max_load, average + max_task + 1e-6);
  expect_partition_complete(graph, parts);
}

TEST(HfpPartition, LocalityBeatsRoundRobin) {
  // On the 2D matmul the package order must reuse data: count distinct
  // (data, package) incidences — HFP should need far fewer than scattered
  // round-robin assignment.
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 8, .data_bytes = 10});
  const auto parts = hfp_partition(graph, 2, 80);

  auto incidences = [&graph](const std::vector<std::vector<TaskId>>& p) {
    std::size_t count = 0;
    for (const auto& part : p) {
      std::set<DataId> inputs;
      for (TaskId task : part) {
        for (DataId data : graph.inputs(task)) inputs.insert(data);
      }
      count += inputs.size();
    }
    return count;
  };

  // A scattered random balanced assignment touches nearly every data item
  // from both parts (~2 * 2N incidences); the structural optimum is 3N.
  util::Rng rng(7);
  std::vector<TaskId> shuffled(graph.num_tasks());
  for (TaskId task = 0; task < graph.num_tasks(); ++task) shuffled[task] = task;
  rng.shuffle(shuffled);
  std::vector<std::vector<TaskId>> random_parts(2);
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    random_parts[i % 2].push_back(shuffled[i]);
  }
  EXPECT_LT(incidences(parts), incidences(random_parts));
}

}  // namespace
}  // namespace mg::sched
