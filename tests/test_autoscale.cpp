// Elastic-autoscaling tests: the Autoscaler policy's hysteresis / cooldown
// / bound behaviour, graceful node drains (shard-migration byte
// conservation, zero lost progress, no deadlock under dependency-gated and
// checkpointed runs), join warm-up gating (a joining node serves no task
// before kNodeJoined), the ServeEngine scale-out/scale-in loop end to end,
// the disabled-autoscaler byte-identity guarantee of the schema-7 report,
// and node-loss fault-plan parsing/validation/recovery.
#include "cluster/autoscaler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/task_graph.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"

namespace mg {
namespace {

using cluster::Autoscaler;
using cluster::AutoscalerConfig;
using core::DataId;
using core::TaskId;
using sim::InspectorEvent;
using sim::InspectorEventKind;

/// Trivial arithmetic (1 byte transfers in 1 us, 1 flop computes in 1 us)
/// spread over a multi-node cluster.
core::Platform cluster_platform(std::uint32_t gpus, std::uint32_t nodes,
                                std::uint64_t memory = 1000,
                                std::uint64_t host_memory = 4000) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.num_nodes = nodes;
  platform.gpu_memory_bytes = memory;
  platform.host_memory_bytes = host_memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

/// Wide independent graph: `tasks` tasks of `flops` us each over `datas`
/// distinct 10-byte inputs (round-robin), so every node holds home shards.
core::TaskGraph wide_graph(std::uint32_t tasks, std::uint32_t datas,
                           double flops = 20.0) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (std::uint32_t i = 0; i < datas; ++i) {
    data.push_back(builder.add_data(10));
  }
  for (std::uint32_t t = 0; t < tasks; ++t) {
    builder.add_task(flops, {data[t % datas]});
  }
  return builder.build();
}

/// Captures the raw event stream for kind-level assertions.
class RecordingInspector final : public sim::Inspector {
 public:
  void on_event(const InspectorEvent& event) override {
    events_.push_back(event);
  }
  [[nodiscard]] const std::vector<InspectorEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(InspectorEventKind kind) const {
    std::size_t n = 0;
    for (const InspectorEvent& event : events_) {
      if (event.kind == kind) ++n;
    }
    return n;
  }

 private:
  std::vector<InspectorEvent> events_;
};

AutoscalerConfig policy_config() {
  AutoscalerConfig config;
  config.enabled = true;
  config.min_nodes = 1;
  config.max_nodes = 4;
  config.scale_out_queue = 4;
  config.scale_in_queue = 0;
  config.check_interval_us = 10.0;
  config.cooldown_us = 100.0;
  config.hysteresis_checks = 2;
  return config;
}

// ---------------------------------------------------------------------------
// Autoscaler policy unit tests.

TEST(AutoscalerPolicy, DisabledAlwaysHolds) {
  AutoscalerConfig config = policy_config();
  config.enabled = false;
  Autoscaler scaler(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scaler.sample({i * 10.0, 100, 100, 1}),
              Autoscaler::Decision::kHold);
  }
  EXPECT_EQ(scaler.scale_out_decisions(), 0u);
}

TEST(AutoscalerPolicy, HysteresisNeedsConsecutivePressure) {
  Autoscaler scaler(policy_config());
  // One pressured sample is not enough (hysteresis_checks = 2)...
  EXPECT_EQ(scaler.sample({0.0, 8, 2, 1}), Autoscaler::Decision::kHold);
  // ...and a calm sample in between resets the streak.
  EXPECT_EQ(scaler.sample({10.0, 2, 2, 1}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({20.0, 8, 2, 1}), Autoscaler::Decision::kHold);
  // Two in a row fire.
  EXPECT_EQ(scaler.sample({30.0, 8, 2, 1}), Autoscaler::Decision::kScaleOut);
  EXPECT_EQ(scaler.scale_out_decisions(), 1u);
}

TEST(AutoscalerPolicy, CooldownBlocksBackToBackDecisions) {
  Autoscaler scaler(policy_config());
  EXPECT_EQ(scaler.sample({0.0, 8, 2, 1}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({10.0, 8, 2, 1}), Autoscaler::Decision::kScaleOut);
  // Pressure persists but the cooldown (100 us) gates further decisions...
  EXPECT_EQ(scaler.sample({20.0, 8, 2, 2}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({60.0, 8, 2, 2}), Autoscaler::Decision::kHold);
  // ...until it expires (streak kept building through the cooldown).
  EXPECT_EQ(scaler.sample({110.0, 8, 2, 2}), Autoscaler::Decision::kScaleOut);
  EXPECT_EQ(scaler.scale_out_decisions(), 2u);
}

TEST(AutoscalerPolicy, RespectsMinAndMaxBounds) {
  Autoscaler scaler(policy_config());
  // At max_nodes = 4 the out pressure never converts into a decision...
  EXPECT_EQ(scaler.sample({0.0, 8, 4, 4}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({10.0, 8, 4, 4}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.scale_out_decisions(), 0u);
  // ...and an unconverted decision must NOT restamp the cooldown: genuine
  // scale-in pressure right after still fires (the regression that
  // originally pinned fleets at full scale).
  EXPECT_EQ(scaler.sample({20.0, 0, 1, 4}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({30.0, 0, 1, 4}), Autoscaler::Decision::kScaleIn);
  // At min_nodes = 1 the in pressure is ignored.
  Autoscaler floor(policy_config());
  EXPECT_EQ(floor.sample({0.0, 0, 0, 1}), Autoscaler::Decision::kHold);
  EXPECT_EQ(floor.sample({10.0, 0, 0, 1}), Autoscaler::Decision::kHold);
  EXPECT_EQ(floor.scale_in_decisions(), 0u);
}

TEST(AutoscalerPolicy, ScaleInNeedsIdleCapacityNotJustAnEmptyQueue) {
  Autoscaler scaler(policy_config());
  // Queue empty but every node busy (in_flight >= active): hold forever.
  EXPECT_EQ(scaler.sample({0.0, 0, 3, 3}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({10.0, 0, 3, 3}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.scale_in_decisions(), 0u);
  // Idle capacity appears: two samples later the drain fires.
  EXPECT_EQ(scaler.sample({20.0, 0, 1, 3}), Autoscaler::Decision::kHold);
  EXPECT_EQ(scaler.sample({30.0, 0, 1, 3}), Autoscaler::Decision::kScaleIn);
}

TEST(AutoscalerPolicyDeathTest, RejectsOverlappingThresholds) {
  AutoscalerConfig config = policy_config();
  config.scale_in_queue = config.scale_out_queue;
  EXPECT_DEATH(Autoscaler{config}, "scale_in_queue");
}

// ---------------------------------------------------------------------------
// Engine-level drains and joins.

TEST(NodeDrain, MigratesHomeShardsWithByteConservation) {
  const core::TaskGraph graph = wide_graph(24, 8);
  sched::HfpScheduler scheduler;
  sim::RuntimeEngine engine(graph, cluster_platform(4, 2), scheduler);
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);

  engine.event_queue().schedule_at(30.0,
                                   [&engine] { engine.begin_node_drain(1); });
  const core::RunMetrics metrics = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_GT(metrics.makespan_us, 0.0);

  // The drain retired node 1 and the survivors finished every task exactly
  // once — zero lost progress, nothing reclaimed or rolled back.
  EXPECT_EQ(engine.node_status(1), sim::RuntimeEngine::NodeStatus::kInactive);
  EXPECT_EQ(engine.active_node_count(), 1u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskReclaimed), 0u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskUnretired), 0u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeDrainStart), 1u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeDrained), 1u);

  // Byte conservation: every migration that started also finished, with the
  // same payload, and every migrated shard left the draining node (odd
  // DataIds are homed on node 1 of a 2-node platform).
  std::map<std::uint32_t, std::uint64_t> started;
  std::uint64_t migrated_bytes = 0;
  for (const InspectorEvent& event : recorder.events()) {
    if (event.kind == InspectorEventKind::kDataMigrateStart) {
      EXPECT_TRUE(started.emplace(event.id, event.bytes).second)
          << "data " << event.id << " migrated twice";
      EXPECT_EQ(event.id % 2, 1u) << "migrated a shard homed on a survivor";
    } else if (event.kind == InspectorEventKind::kDataMigrated) {
      const auto it = started.find(event.id);
      ASSERT_NE(it, started.end()) << "migration finished without starting";
      EXPECT_EQ(it->second, event.bytes) << "migration payload changed";
      EXPECT_NE(event.aux, 1u) << "migrated onto the draining node";
      migrated_bytes += event.bytes;
      started.erase(it);
    }
  }
  EXPECT_TRUE(started.empty()) << started.size() << " migration(s) in flight";
  EXPECT_GT(migrated_bytes, 0u);
}

TEST(NodeDrain, DuringDependencyGatedRunDoesNotDeadlock) {
  // Three independent 8-deep chains: at drain time most successors are
  // still release-gated, so the drain must not strand a gated task on the
  // retiring node.
  core::TaskGraphBuilder builder;
  for (int chain = 0; chain < 3; ++chain) {
    const DataId d = builder.add_data(10);
    TaskId prev = core::kInvalidTask;
    for (int i = 0; i < 8; ++i) {
      const TaskId task = builder.add_task(10.0, {d});
      if (prev != core::kInvalidTask) builder.add_dependency(prev, task);
      prev = task;
    }
  }
  const core::TaskGraph graph = builder.build();

  sched::HfpScheduler scheduler;
  sim::RuntimeEngine engine(graph, cluster_platform(4, 2), scheduler);
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  engine.event_queue().schedule_at(25.0,
                                   [&engine] { engine.begin_node_drain(1); });

  EXPECT_NO_THROW(engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeDrained), 1u);
}

TEST(NodeDrain, DuringCheckpointedRunDoesNotDeadlock) {
  const core::TaskGraph graph = wide_graph(16, 4, 50.0);
  sched::HfpScheduler scheduler;
  sim::EngineConfig config;
  config.checkpoint_interval_us = 20.0;
  sim::RuntimeEngine engine(graph, cluster_platform(4, 2), scheduler, config);
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  engine.event_queue().schedule_at(60.0,
                                   [&engine] { engine.begin_node_drain(1); });

  EXPECT_NO_THROW(engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeDrained), 1u);
  // The checkpoint channel was actually exercised alongside the drain.
  EXPECT_GT(recorder.count(InspectorEventKind::kCheckpoint), 0u);
}

TEST(NodeJoin, WarmFillsCompleteBeforeTheNodeServes) {
  const core::TaskGraph graph = wide_graph(32, 8);
  sched::HfpScheduler scheduler;
  sim::EngineConfig config;
  config.initial_active_nodes = 1;
  const core::Platform platform = cluster_platform(4, 2);
  sim::RuntimeEngine engine(graph, platform, scheduler, config);
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  engine.event_queue().schedule_at(40.0,
                                   [&engine] { engine.begin_node_join(1); });

  EXPECT_NO_THROW(engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(engine.node_status(1), sim::RuntimeEngine::NodeStatus::kActive);
  EXPECT_EQ(engine.active_node_count(), 2u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeJoinStart), 1u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeJoined), 1u);

  // Warm-up gating: every warm fill lands before kNodeJoined, and no task
  // computes on a node-1 GPU before the join completed.
  double joined_at = -1.0;
  for (const InspectorEvent& event : recorder.events()) {
    if (event.kind == InspectorEventKind::kNodeJoined) joined_at = event.time_us;
  }
  ASSERT_GE(joined_at, 40.0);
  for (const InspectorEvent& event : recorder.events()) {
    if (event.kind == InspectorEventKind::kNodeWarmFill) {
      EXPECT_LE(event.time_us, joined_at);
    }
    if (event.kind == InspectorEventKind::kTaskStart &&
        platform.node_of(event.gpu) == 1) {
      EXPECT_GE(event.time_us, joined_at)
          << "task " << event.id << " ran on the warming node";
    }
  }
}

// ---------------------------------------------------------------------------
// ServeEngine end to end.

core::TaskGraph serve_template() {
  // 6 tasks of 100 us: one job is ~300 us of work for a 2-GPU node, so a
  // 5000 jobs/s arrival stream (200 us spacing) overloads one node but not
  // two — the gap the scale-out closes.
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 4; ++i) data.push_back(builder.add_data(10));
  for (int t = 0; t < 6; ++t) {
    builder.add_task(100.0, {data[t % 4], data[(t + 1) % 4]});
  }
  return builder.build();
}

TEST(ServeAutoscale, ScaleOutEndToEndShedsLessThanFixedSmall) {
  const std::vector<core::TaskGraph> templates = {serve_template()};
  std::vector<serve::JobSpec> jobs(60);
  for (serve::JobSpec& job : jobs) job.deadline_us = 5000.0;
  const core::Platform platform = cluster_platform(4, 2);

  const auto run = [&](bool autoscale) {
    serve::ServeConfig config;
    config.arrival.mode = serve::ArrivalMode::kPoisson;
    config.arrival.rate_jobs_per_s = 5000.0;
    config.arrival.seed = 7;
    config.admission.max_jobs_in_flight = 2;
    config.admission.max_queue_depth = 2;
    config.engine.initial_active_nodes = 1;
    if (autoscale) {
      config.autoscale.enabled = true;
      config.autoscale.scale_out_queue = 2;
      config.autoscale.check_interval_us = 20.0;
      config.autoscale.cooldown_us = 100.0;
      config.autoscale.hysteresis_checks = 1;
    }
    sched::HfpScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler, config);
    sim::InvariantChecker checker({.fail_fast = false});
    sim::RunReportCollector collector(
        {.context = "test", .collect_trace = false});
    engine.add_inspector(&checker);
    engine.add_inspector(&collector);
    serve::ServeResult result = engine.run();
    EXPECT_TRUE(checker.ok()) << checker.report().error;
    return std::pair(result, collector.report().autoscaling);
  };

  const auto [fixed, fixed_scaling] = run(false);
  const auto [scaled, scaled_scaling] = run(true);

  EXPECT_EQ(fixed.scale_out_events, 0u);
  EXPECT_EQ(fixed_scaling.nodes_joined, 0u);
  EXPECT_GE(scaled.scale_out_events, 1u);
  EXPECT_GE(scaled_scaling.nodes_joined, 1u);
  EXPECT_GT(scaled_scaling.warm_fills, 0u);
  // The grown fleet absorbs load the fixed-small one had to shed.
  EXPECT_LT(scaled.serving.jobs_shed, fixed.serving.jobs_shed);
}

TEST(ServeAutoscale, DisabledIsByteIdenticalWithZeroedSection) {
  const std::vector<core::TaskGraph> templates = {serve_template()};
  std::vector<serve::JobSpec> jobs(10);
  for (serve::JobSpec& job : jobs) job.deadline_us = 2000.0;
  const core::Platform platform = cluster_platform(4, 2);

  const auto report_json = [&](const serve::ServeConfig& config) {
    sched::HfpScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler, config);
    sim::RunReportCollector collector(
        {.context = "identity", .collect_trace = false});
    engine.add_inspector(&collector);
    serve::ServeResult result = engine.run();
    sim::RunReport report = collector.report();
    report.serving = result.serving;
    report.autoscaling.scale_out_events = result.scale_out_events;
    report.autoscaling.scale_in_events = result.scale_in_events;
    return run_report_to_json(report);
  };

  serve::ServeConfig plain;
  plain.arrival.mode = serve::ArrivalMode::kPoisson;
  plain.arrival.rate_jobs_per_s = 5000.0;
  plain.arrival.seed = 3;

  // A config that never mentions the autoscaler and one that spells out
  // enabled = false with exotic knobs produce byte-identical reports: the
  // disabled policy leaves no trace in the run.
  serve::ServeConfig spelled = plain;
  spelled.autoscale.enabled = false;
  spelled.autoscale.scale_out_queue = 17;
  spelled.autoscale.check_interval_us = 1.0;

  const std::string a = report_json(plain);
  const std::string b = report_json(spelled);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"autoscaling\":{\"enabled\":false"), std::string::npos);
  EXPECT_NE(a.find("\"scale_out_events\":0"), std::string::npos);
  EXPECT_EQ(sim::RunReport::kSchemaVersion, 10);
}

// ---------------------------------------------------------------------------
// Node-loss fault plans (the unplanned twin of a drain).

TEST(NodeLossPlan, ParsesRoundTripsAndValidates) {
  const std::string json = R"({
    "schema_version": 2,
    "seed": 9,
    "node_losses": [{"time_us": 50.0, "node": 1}]
  })";
  std::string error;
  const auto plan = sim::parse_fault_plan(json, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->node_losses.size(), 1u);
  EXPECT_EQ(plan->node_losses[0].node, 1u);
  EXPECT_DOUBLE_EQ(plan->node_losses[0].time_us, 50.0);

  // Round-trip through the serializer.
  const auto again = sim::parse_fault_plan(sim::fault_plan_to_json(*plan));
  ASSERT_TRUE(again.has_value());
  ASSERT_EQ(again->node_losses.size(), 1u);
  EXPECT_EQ(again->node_losses[0].node, 1u);

  // Validation: single-node platforms reject node plans; ids must be in
  // range and unique; at least one node must survive.
  EXPECT_NE(plan->validate(4, 1).find("multi-node"), std::string::npos);
  EXPECT_TRUE(plan->validate(4, 2).empty()) << plan->validate(4, 2);
  sim::FaultPlan out_of_range = *plan;
  out_of_range.node_losses[0].node = 5;
  EXPECT_NE(out_of_range.validate(4, 2).find("out of range"),
            std::string::npos);
  sim::FaultPlan duplicate = *plan;
  duplicate.node_losses.push_back({60.0, 1});
  EXPECT_NE(duplicate.validate(4, 2).find("twice"), std::string::npos);
}

TEST(NodeLossPlan, SyntaxErrorNamesTheLine) {
  std::string error;
  const auto plan =
      sim::parse_fault_plan("{\n  \"node_losses\": [{\"node\": }]\n}", &error);
  EXPECT_FALSE(plan.has_value());
  EXPECT_NE(error.find("line"), std::string::npos) << error;
}

TEST(NodeLoss, RecoveryPassCompletesTheRun) {
  const core::TaskGraph graph = wide_graph(24, 8);
  sched::HfpScheduler scheduler;
  sim::FaultPlan plan;
  plan.node_losses.push_back({40.0, 1});
  sim::FaultInjector injector(plan);
  sim::RuntimeEngine engine(graph, cluster_platform(4, 2), scheduler);
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);

  sim::RunReportCollector collector(
      {.context = "node-loss", .collect_trace = false});
  engine.add_inspector(&collector);
  EXPECT_NO_THROW(engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(engine.node_status(1), sim::RuntimeEngine::NodeStatus::kLost);
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeLost), 1u);
  EXPECT_EQ(collector.report().autoscaling.node_losses, 1u);
  // Every task still completed (re-runs allowed, loss is not a drain).
  EXPECT_GE(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
}

}  // namespace
}  // namespace mg
