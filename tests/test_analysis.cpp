#include <gtest/gtest.h>

#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/offline_model.hpp"
#include "analysis/validate.hpp"
#include "core/task_graph.hpp"
#include "sim/trace.hpp"

namespace mg::analysis {
namespace {

using core::DataId;
using core::TaskId;
using sim::Trace;
using sim::TraceEvent;
using sim::TraceKind;

/// d0, d1 of 10 bytes; t0{d0}, t1{d0,d1}.
core::TaskGraph small_graph() {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  builder.add_task(1.0, {d0});
  builder.add_task(1.0, {d0, d1});
  return builder.build();
}

core::Platform small_platform(std::uint64_t memory = 100) {
  core::Platform platform;
  platform.num_gpus = 1;
  platform.gpu_memory_bytes = memory;
  return platform;
}

Trace valid_trace() {
  Trace trace;
  trace.events = {
      {1.0, TraceKind::kLoad, 0, 0},       // d0
      {2.0, TraceKind::kTaskStart, 0, 0},  // t0
      {3.0, TraceKind::kTaskEnd, 0, 0},
      {4.0, TraceKind::kLoad, 0, 1},       // d1
      {5.0, TraceKind::kTaskStart, 0, 1},  // t1
      {6.0, TraceKind::kTaskEnd, 0, 1},
  };
  return trace;
}

TEST(Validator, AcceptsAValidTrace) {
  const auto result =
      validate_trace(small_graph(), small_platform(), valid_trace());
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Validator, RejectsDoubleLoad) {
  Trace trace = valid_trace();
  trace.events.insert(trace.events.begin() + 1,
                      TraceEvent{1.5, TraceKind::kLoad, 0, 0});
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("already-resident"), std::string::npos);
}

TEST(Validator, RejectsEvictionOfAbsentData) {
  Trace trace = valid_trace();
  trace.events.push_back({7.0, TraceKind::kEvict, 0, 1});
  trace.events.push_back({8.0, TraceKind::kEvict, 0, 1});
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("non-resident"), std::string::npos);
}

TEST(Validator, RejectsStartWithMissingInput) {
  Trace trace;
  trace.events = {
      {1.0, TraceKind::kLoad, 0, 0},
      {2.0, TraceKind::kTaskStart, 0, 1},  // t1 needs d1 too
  };
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("missing input"), std::string::npos);
}

TEST(Validator, RejectsOverlappingTasksOnOneGpu) {
  Trace trace;
  trace.events = {
      {1.0, TraceKind::kLoad, 0, 0},
      {2.0, TraceKind::kLoad, 0, 1},
      {3.0, TraceKind::kTaskStart, 0, 0},
      {4.0, TraceKind::kTaskStart, 0, 1},  // t0 still running
  };
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("two tasks"), std::string::npos);
}

TEST(Validator, RejectsEndOfTaskNotRunning) {
  Trace trace;
  trace.events = {{1.0, TraceKind::kTaskEnd, 0, 0}};
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("was not running"), std::string::npos);
}

TEST(Validator, RejectsMemoryBoundViolation) {
  Trace trace = valid_trace();  // holds both 10-byte data at once
  const auto result =
      validate_trace(small_graph(), small_platform(/*memory=*/15), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("memory bound"), std::string::npos);
}

TEST(Validator, RejectsMissingExecution) {
  Trace trace = valid_trace();
  trace.events.resize(3);  // only t0 ran
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("executed 0 times"), std::string::npos);
}

TEST(Validator, RejectsTimeGoingBackwards) {
  Trace trace = valid_trace();
  trace.events[1].time_us = 0.5;
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("backwards"), std::string::npos);
}

TEST(Validator, RejectsUnknownGpu) {
  Trace trace;
  trace.events = {{1.0, TraceKind::kLoad, 7, 0}};
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown gpu"), std::string::npos);
}

TEST(Validator, PeerLoadAddsResidency) {
  Trace trace = valid_trace();
  trace.events[3].kind = TraceKind::kPeerLoad;  // d1 arrives via NVLink
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Validator, WriteBackEventsAreNeutral) {
  Trace trace = valid_trace();
  trace.events.push_back({7.0, TraceKind::kWriteBack, 0, 1});
  const auto result =
      validate_trace(small_graph(), small_platform(), trace);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(TraceHelpers, ExecutionOrderFiltersByGpu) {
  Trace trace;
  trace.events = {
      {1.0, TraceKind::kTaskStart, 0, 5},
      {2.0, TraceKind::kTaskStart, 1, 7},
      {3.0, TraceKind::kTaskEnd, 0, 5},
      {4.0, TraceKind::kTaskStart, 0, 6},
  };
  EXPECT_EQ(trace.execution_order(0), (std::vector<TaskId>{5, 6}));
  EXPECT_EQ(trace.execution_order(1), (std::vector<TaskId>{7}));
}

TEST(PipelinedLru, MatchesPlainLruOnNormalInstances) {
  // The previous task's inputs always carry the newest stamps, so plain LRU
  // never chooses them anyway: the two modes agree except in the
  // all-protected edge case below.
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 5; ++i) data.push_back(builder.add_data(1));
  builder.add_task(1.0, {data[0]});
  builder.add_task(1.0, {data[1]});
  builder.add_task(1.0, {data[2]});
  builder.add_task(1.0, {data[0], data[3]});
  builder.add_task(1.0, {data[4], data[1]});
  const core::TaskGraph graph = builder.build();

  const Schedule schedule{{0, 1, 2, 3, 4}};
  for (std::uint64_t memory : {2, 3, 4}) {
    const auto plain =
        replay_schedule(graph, schedule, memory, ReplayEviction::kLru);
    const auto pipelined = replay_schedule(graph, schedule, memory,
                                           ReplayEviction::kLruPipelined);
    EXPECT_EQ(plain.total_loads, pipelined.total_loads) << "M=" << memory;
  }
}

TEST(PipelinedLru, FallsBackWhenEverythingIsProtected) {
  // Memory 3: at task t1, the resident set is exactly prev(t0) + cur(t1)
  // inputs; pipelined mode must fall back to plain LRU instead of aborting.
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(1);
  const DataId d1 = builder.add_data(1);
  const DataId d2 = builder.add_data(1);
  const DataId d3 = builder.add_data(1);
  builder.add_task(1.0, {d0, d1});
  builder.add_task(1.0, {d2, d3});
  const core::TaskGraph graph = builder.build();

  const Schedule schedule{{0, 1}};
  const auto pipelined =
      replay_schedule(graph, schedule, 3, ReplayEviction::kLruPipelined);
  EXPECT_EQ(pipelined.total_loads, 4u);
}

TEST(Bounds, ThresholdsScaleWithGpuCountAndMemory) {
  core::Platform platform = core::make_v100_platform(4, 250 * core::kMB);
  EXPECT_EQ(threshold_both_matrices_fit(platform), 1000 * core::kMB);
  EXPECT_EQ(threshold_one_matrix_fits(platform), 2000 * core::kMB);
  EXPECT_DOUBLE_EQ(gflops_max(platform), 4 * 13253.0);
}

}  // namespace
}  // namespace mg::analysis
