#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partitioner.hpp"
#include "hypergraph/quality.hpp"
#include "util/rng.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::hyper {
namespace {

TEST(Hypergraph, CsrBothDirections) {
  // 4 vertices, nets {0,1,2}, {2,3}, {0}.
  Hypergraph hypergraph({1, 1, 1, 1}, {{0, 1, 2}, {2, 3}, {0}}, {5, 7, 9});
  EXPECT_EQ(hypergraph.num_vertices(), 4u);
  EXPECT_EQ(hypergraph.num_nets(), 3u);
  EXPECT_EQ(hypergraph.num_pins(), 6u);

  const auto pins0 = hypergraph.pins(0);
  EXPECT_EQ(std::vector<VertexId>(pins0.begin(), pins0.end()),
            (std::vector<VertexId>{0, 1, 2}));
  const auto nets2 = hypergraph.nets_of(2);
  EXPECT_EQ(std::vector<NetId>(nets2.begin(), nets2.end()),
            (std::vector<NetId>{0, 1}));
  EXPECT_EQ(hypergraph.net_weight(1), 7u);
  EXPECT_EQ(hypergraph.total_vertex_weight(), 4u);
}

TEST(Hypergraph, FromTaskGraphHasOneNetPerData) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 4, .data_bytes = 100});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  EXPECT_EQ(hypergraph.num_vertices(), graph.num_tasks());
  EXPECT_EQ(hypergraph.num_nets(), graph.num_data());
  for (NetId net = 0; net < hypergraph.num_nets(); ++net) {
    EXPECT_EQ(hypergraph.pins(net).size(), graph.consumers(net).size());
    EXPECT_EQ(hypergraph.net_weight(net), graph.data_size(net));
  }
}

TEST(Hypergraph, FlopWeightsScaleFromLightestTask) {
  const core::TaskGraph graph = work::make_cholesky_tasks({.n = 4});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  // Lightest task is POTRF (t^3/3): weight 1. GEMM is 2t^3: weight 6.
  std::uint64_t min_weight = ~0ull;
  std::uint64_t max_weight = 0;
  for (VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
    min_weight = std::min(min_weight, hypergraph.vertex_weight(v));
    max_weight = std::max(max_weight, hypergraph.vertex_weight(v));
  }
  EXPECT_EQ(min_weight, 1u);
  EXPECT_EQ(max_weight, 6u);
}

TEST(Quality, CountsConnectivityAndCut) {
  Hypergraph hypergraph({1, 1, 1, 1}, {{0, 1}, {1, 2, 3}, {0, 3}},
                        {10, 20, 30});
  // Partition {0,1 | 2,3}: net0 internal, net1 cut (lambda 2), net2 cut.
  const std::vector<std::uint32_t> part{0, 0, 1, 1};
  const PartitionQuality quality = evaluate_partition(hypergraph, part, 2);
  EXPECT_EQ(quality.cut_nets_weight, 50u);
  EXPECT_EQ(quality.connectivity_minus_1, 50u);
  EXPECT_DOUBLE_EQ(quality.imbalance, 0.0);
}

TEST(Quality, LambdaCountsEveryTouchedPart) {
  Hypergraph hypergraph({1, 1, 1}, {{0, 1, 2}}, {10});
  const std::vector<std::uint32_t> part{0, 1, 2};
  const PartitionQuality quality = evaluate_partition(hypergraph, part, 3);
  EXPECT_EQ(quality.connectivity_minus_1, 20u);  // lambda=3 -> (3-1)*10
}

TEST(Partitioner, ProducesValidAssignment) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 8, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  PartitionerConfig config;
  config.num_parts = 4;
  config.seed = 3;
  const auto part = partition_hypergraph(hypergraph, config);
  ASSERT_EQ(part.size(), hypergraph.num_vertices());
  std::set<std::uint32_t> used(part.begin(), part.end());
  for (std::uint32_t p : used) EXPECT_LT(p, 4u);
  EXPECT_EQ(used.size(), 4u);  // all parts non-empty on a regular workload
}

TEST(Partitioner, RespectsBalanceOnUniformWeights) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 10, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  PartitionerConfig config;
  config.num_parts = 2;
  config.imbalance = 0.02;
  config.seed = 5;
  const auto part = partition_hypergraph(hypergraph, config);
  const PartitionQuality quality = evaluate_partition(hypergraph, part, 2);
  // Multilevel + FM should land close to the bound; allow slack for the
  // coarse granularity of a 100-task instance.
  EXPECT_LE(quality.imbalance, 0.08);
}

TEST(Partitioner, SeparatesDisconnectedClusters) {
  // Two disjoint cliques of 8 tasks sharing one data each: the optimal
  // bisection cuts nothing.
  core::TaskGraphBuilder builder;
  const core::DataId a = builder.add_data(10);
  const core::DataId b = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {a});
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {b});
  const Hypergraph hypergraph =
      hypergraph_from_task_graph(builder.build());

  PartitionerConfig config;
  config.num_parts = 2;
  config.seed = 9;
  const auto part = partition_hypergraph(hypergraph, config);
  const PartitionQuality quality = evaluate_partition(hypergraph, part, 2);
  EXPECT_EQ(quality.connectivity_minus_1, 0u);
  EXPECT_DOUBLE_EQ(quality.imbalance, 0.0);
}

TEST(Partitioner, CutIsNearTheStructuralOptimum) {
  // For the NxN 2D matmul, the best balanced bisection splits one dimension
  // in half and cuts exactly the N nets of the other dimension.
  const std::uint32_t n = 12;
  const core::TaskGraph graph = work::make_matmul_2d({.n = n, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  PartitionerConfig config;
  config.num_parts = 2;
  config.seed = 1;
  const auto part = partition_hypergraph(hypergraph, config);
  const auto quality = evaluate_partition(hypergraph, part, 2);

  const std::uint64_t optimal = static_cast<std::uint64_t>(n) * 10;
  EXPECT_LE(quality.connectivity_minus_1, 2 * optimal);

  // And it must clearly beat a scattered random assignment, which puts both
  // halves on nearly every net (~2N cut nets).
  util::Rng rng(123);
  std::vector<std::uint32_t> random_assignment(hypergraph.num_vertices());
  for (VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
    random_assignment[v] = static_cast<std::uint32_t>(rng.below(2));
  }
  const auto random_quality =
      evaluate_partition(hypergraph, random_assignment, 2);
  EXPECT_LT(quality.connectivity_minus_1, random_quality.connectivity_minus_1);
}

TEST(KwayRefine, FixesAnObviouslyBadAssignment) {
  // Two disjoint clusters, deliberately mis-assigned half-and-half: the
  // refinement must move vertices until the cut is zero.
  core::TaskGraphBuilder builder;
  const core::DataId a = builder.add_data(10);
  const core::DataId b = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {a});
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {b});
  const Hypergraph hypergraph = hypergraph_from_task_graph(builder.build());

  // Interleave: vertices 0..7 read net a, 8..15 read net b; assign by
  // parity so both nets are cut. Greedy single moves need at least one
  // vertex of transient imbalance headroom to get moving.
  std::vector<std::uint32_t> part(16);
  for (VertexId v = 0; v < 16; ++v) part[v] = v % 2;

  kway_refine(hypergraph, part, 2, /*imbalance=*/0.14, /*max_passes=*/8);
  const auto quality = evaluate_partition(hypergraph, part, 2);
  EXPECT_EQ(quality.connectivity_minus_1, 0u);
  EXPECT_LE(quality.imbalance, 0.14 + 1e-9);
}

TEST(KwayRefine, NeverWorsensConnectivityOrBreaksBalance) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 10, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);

  util::Rng rng(5);
  std::vector<std::uint32_t> part(hypergraph.num_vertices());
  for (auto& p : part) p = static_cast<std::uint32_t>(rng.below(4));
  const auto before = evaluate_partition(hypergraph, part, 4);

  kway_refine(hypergraph, part, 4, 0.30, 4);
  const auto after = evaluate_partition(hypergraph, part, 4);
  EXPECT_LE(after.connectivity_minus_1, before.connectivity_minus_1);
  EXPECT_LE(after.imbalance, 0.35);  // bound plus integer-weight slack
}

TEST(KwayRefine, NoOpForSinglePart) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 4, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  std::vector<std::uint32_t> part(hypergraph.num_vertices(), 0);
  kway_refine(hypergraph, part, 1, 0.02, 4);
  EXPECT_TRUE(std::all_of(part.begin(), part.end(),
                          [](std::uint32_t p) { return p == 0; }));
}

TEST(Partitioner, SinglePartIsAllZeros) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 3, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  PartitionerConfig config;
  config.num_parts = 1;
  const auto part = partition_hypergraph(hypergraph, config);
  EXPECT_TRUE(std::all_of(part.begin(), part.end(),
                          [](std::uint32_t p) { return p == 0; }));
}

TEST(Partitioner, DeterministicForFixedSeed) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 8, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  PartitionerConfig config;
  config.num_parts = 4;
  config.seed = 17;
  const auto part_a = partition_hypergraph(hypergraph, config);
  const auto part_b = partition_hypergraph(hypergraph, config);
  EXPECT_EQ(part_a, part_b);
}

TEST(Partitioner, HandlesNonPowerOfTwoParts) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 9, .data_bytes = 10});
  const Hypergraph hypergraph = hypergraph_from_task_graph(graph);
  PartitionerConfig config;
  config.num_parts = 3;
  config.seed = 2;
  const auto part = partition_hypergraph(hypergraph, config);
  std::vector<std::uint64_t> weights(3, 0);
  for (VertexId v = 0; v < hypergraph.num_vertices(); ++v) {
    weights[part[v]] += hypergraph.vertex_weight(v);
  }
  const auto max_weight = *std::max_element(weights.begin(), weights.end());
  const auto min_weight = *std::min_element(weights.begin(), weights.end());
  EXPECT_GT(min_weight, 0u);
  EXPECT_LT(static_cast<double>(max_weight),
            1.35 * static_cast<double>(min_weight));
}

}  // namespace
}  // namespace mg::hyper
