// Randomized differential test harness: ~200 random (graph, scheduler)
// combinations run under the online invariant checker. Every scheduler must
// produce a violation-free run that executes the identical task set, and
// the realized load counts must respect the eviction-free bounds of
// analysis/bounds.hpp. Rounds alternate between the single-node platform
// and a 2-node cluster topology, so the remote-fetch/host-cache machinery
// is swept by the same invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/darts.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "slo/tier_policy.hpp"
#include "util/rng.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/layered_dag.hpp"
#include "workloads/random_bipartite.hpp"

namespace mg {
namespace {

using core::TaskId;

struct SchedulerCase {
  std::string label;
  std::unique_ptr<core::Scheduler> scheduler;
};

std::vector<SchedulerCase> make_schedulers() {
  std::vector<SchedulerCase> cases;
  cases.push_back({"EAGER", std::make_unique<sched::EagerScheduler>()});
  cases.push_back({"DMDAR", std::make_unique<sched::DmdaScheduler>()});
  cases.push_back({"DARTS+LUF", std::make_unique<core::DartsScheduler>(
                                    core::DartsOptions{.use_luf = true})});
  cases.push_back({"HFP", std::make_unique<sched::HfpScheduler>()});
  return cases;
}

/// Draws a random task/data configuration. Varies the task count, the data
/// pool (shared-data density follows from tasks-per-data), the input degree
/// and the GPU count.
work::RandomBipartiteParams draw_params(util::Rng& rng, std::uint64_t seed) {
  work::RandomBipartiteParams params;
  params.num_tasks = 40 + static_cast<std::uint32_t>(rng.below(81));
  params.num_data = 12 + static_cast<std::uint32_t>(rng.below(21));
  params.min_inputs = 1;
  params.max_inputs =
      2 + static_cast<std::uint32_t>(rng.below(3));  // 2..4: density knob
  params.data_bytes = 10 + rng.below(91);            // 10..100 bytes
  params.task_flops = 1e6;
  params.seed = seed;
  return params;
}

/// Memory between "barely fits one task" and "fits about half the data", so
/// eviction, stalled fetches and prefetch races are all exercised.
std::uint64_t draw_memory(util::Rng& rng, const core::TaskGraph& graph,
                          const work::RandomBipartiteParams& params) {
  const std::uint64_t floor_bytes = graph.max_task_footprint();
  const std::uint64_t half_all = params.data_bytes * params.num_data / 2;
  const std::uint64_t ceiling = std::max(floor_bytes + 1, half_all);
  return floor_bytes + rng.below(ceiling - floor_bytes + 1) + 8;
}

TEST(Differential, RandomGraphsAcrossSchedulersStayInvariantFree) {
  constexpr int kGraphs = 50;  // x4 schedulers = 200 checked runs
  util::Rng rng(0xd1ffe7e57ULL);
  std::uint64_t runs_checked = 0;

  for (int round = 0; round < kGraphs; ++round) {
    const work::RandomBipartiteParams params =
        draw_params(rng, 1000 + static_cast<std::uint64_t>(round));
    const core::TaskGraph graph = work::make_random_bipartite(params);
    const std::uint32_t num_gpus = 1 + static_cast<std::uint32_t>(rng.below(4));

    core::Platform platform;
    platform.num_gpus = num_gpus;
    platform.gpu_memory_bytes = draw_memory(rng, graph, params);
    platform.nvlink_enabled = (round % 5 == 0) && num_gpus > 1;
    // Odd rounds run the same draw on a 2-node cluster, exercising the
    // network links, remote fetches and per-node host caches under the
    // identical invariant sweep.
    platform.num_nodes = (round % 2 == 1 && num_gpus >= 2) ? 2 : 1;
    if (platform.is_cluster() && round % 4 == 1) {
      // Tight host cache on some rounds so eviction/refetch paths fire too.
      platform.host_memory_bytes = params.data_bytes * 4;
    }

    // Baseline facts every scheduler must agree on.
    const std::uint64_t loads_floor = analysis::min_loads_lower_bound(graph);
    const std::uint64_t eviction_free_cap =
        analysis::eviction_free_loads_upper_bound(graph, num_gpus);

    for (SchedulerCase& entry : make_schedulers()) {
      SCOPED_TRACE("round " + std::to_string(round) + " scheduler " +
                   entry.label + " gpus " + std::to_string(num_gpus) +
                   " mem " + std::to_string(platform.gpu_memory_bytes));

      sim::EngineConfig config;
      config.seed = 7 + static_cast<std::uint64_t>(round);
      sim::RuntimeEngine engine(graph, platform, *entry.scheduler, config);
      sim::InvariantChecker checker({.fail_fast = false});
      engine.add_inspector(&checker);
      const core::RunMetrics metrics = engine.run();
      ++runs_checked;

      ASSERT_TRUE(checker.ok())
          << checker.report().error << "\nlast events:\n"
          << checker.report().excerpt;
      EXPECT_GT(checker.events_checked(), 0u);

      // Identical completion set: every task exactly once (the checker's
      // finish() proves exactly-once; here we confirm the totals line up
      // with the metrics the engine reports).
      std::uint64_t executed = 0;
      std::uint64_t loads = 0;
      std::uint64_t evictions = 0;
      for (const auto& gpu : metrics.per_gpu) {
        executed += gpu.tasks_executed;
        loads += gpu.loads + gpu.peer_loads;
        evictions += gpu.evictions;
      }
      EXPECT_EQ(executed, graph.num_tasks());

      // Load-volume sanity against the analytical bounds.
      EXPECT_GE(loads, loads_floor);
      if (evictions == 0) {
        EXPECT_LE(loads, eviction_free_cap)
            << "an eviction-free run loaded some data twice on one GPU";
      }
    }
  }
  EXPECT_EQ(runs_checked, static_cast<std::uint64_t>(kGraphs) * 4);
}

TEST(Differential, SeededFaultPlansDegradeGracefullyAcrossSchedulers) {
  // Recovery-path differential sweep: every scheduler must absorb seeded
  // fault plans (GPU losses, flaky transfers, capacity shocks) with zero
  // invariant violations and every task completing on a surviving GPU.
  // 30 rounds x 4 schedulers = 120 faulted runs; rounds rotate through the
  // proactive fault-tolerance policies (checkpoint interval / fraction,
  // hot-data replication) so their recovery paths are swept too. On
  // failure the SCOPED_TRACE names the offending round/seed so the plan
  // can be replayed.
  constexpr int kGraphs = 30;
  util::Rng rng(0xfa17ed5eedULL);
  std::uint64_t runs_checked = 0;

  for (int round = 0; round < kGraphs; ++round) {
    const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(round);
    const work::RandomBipartiteParams params = draw_params(rng, seed);
    const core::TaskGraph graph = work::make_random_bipartite(params);
    const std::uint32_t num_gpus =
        2 + static_cast<std::uint32_t>(rng.below(3));  // need a survivor

    core::Platform platform;
    platform.num_gpus = num_gpus;
    platform.gpu_memory_bytes = draw_memory(rng, graph, params);
    platform.nvlink_enabled = (round % 4 == 0);
    // Odd rounds split the GPUs over two nodes and rotate link faults
    // (degradations and healing partitions) into the drawn plans, with the
    // fetch-timeout detector armed so hedging/suspicion recovery is swept.
    platform.num_nodes = (round % 2 == 1) ? 2 : 1;

    sim::RandomFaultOptions fault_options;
    fault_options.num_gpus = num_gpus;
    fault_options.num_nodes = platform.num_nodes;
    fault_options.allow_link_faults = platform.num_nodes > 1;
    // Rough makespan scale of these graphs under the default platform, so
    // losses/shocks land while work is still in flight.
    fault_options.horizon_us = 2000.0;
    fault_options.gpu_memory_bytes = platform.gpu_memory_bytes;
    const sim::FaultPlan plan =
        sim::make_random_fault_plan(seed, fault_options);
    ASSERT_TRUE(plan.validate(num_gpus, platform.num_nodes).empty())
        << plan.validate(num_gpus, platform.num_nodes);

    for (SchedulerCase& entry : make_schedulers()) {
      SCOPED_TRACE("round " + std::to_string(round) + " fault seed " +
                   std::to_string(seed) + " scheduler " + entry.label +
                   " gpus " + std::to_string(num_gpus) + " mem " +
                   std::to_string(platform.gpu_memory_bytes) + " plan " +
                   sim::fault_plan_to_json(plan));

      sim::EngineConfig config;
      config.seed = 7 + static_cast<std::uint64_t>(round);
      if (round % 3 == 1) config.checkpoint_interval_us = 40.0;
      if (round % 3 == 2) config.checkpoint_fraction = 0.5;
      config.replicate_hot = (round % 2 == 1);
      if (platform.num_nodes > 1) {
        config.fetch_timeout_factor = 4.0;
        config.max_fetch_hedges = 2;
        if (round % 6 == 3) config.suspicion_confirm_window_us = 400.0;
        if (round % 4 == 1) config.retry_jitter = 0.25;
      }
      sim::RuntimeEngine engine(graph, platform, *entry.scheduler, config);
      sim::FaultInjector injector(plan);
      engine.set_fault_injector(&injector);
      sim::InvariantChecker checker({.fail_fast = false});
      engine.add_inspector(&checker);

      core::RunMetrics metrics;
      try {
        metrics = engine.run();
      } catch (const sim::EngineError& error) {
        ADD_FAILURE() << "engine failure under faults: " << error.what();
        continue;
      }
      ++runs_checked;

      ASSERT_TRUE(checker.ok())
          << checker.report().error << "\nlast events:\n"
          << checker.report().excerpt;

      // Every task completes exactly once, on surviving GPUs only.
      std::uint64_t executed = 0;
      for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
      EXPECT_EQ(executed, graph.num_tasks());
      // Losses scripted past the (scheduler-dependent) makespan never fire.
      // When the suspicion detector is armed for escalation, a never-served
      // fetch may add one whole-node teardown on top of the scripted plan.
      const std::uint32_t loss_cap =
          static_cast<std::uint32_t>(plan.gpu_losses.size()) +
          (config.suspicion_confirm_window_us > 0.0 ? num_gpus : 0);
      EXPECT_LE(metrics.faults.gpu_losses, loss_cap);
    }
  }
  EXPECT_EQ(runs_checked, static_cast<std::uint64_t>(kGraphs) * 4);
}

TEST(Differential, DagWorkloadsAcrossSchedulersStayInvariantFree) {
  // Dependency-gated differential sweep: random layered DAGs (explicit
  // edges, and on even rounds derived RAW/WAR/WAW on top) plus the Cholesky
  // tile DAG, across every scheduler on 1- and 2-node topologies. Each run
  // must be violation-free — the checker enforces the predecessor-retirement
  // start gate and released-edge conservation — and complete the identical
  // task set.
  constexpr int kRounds = 20;
  util::Rng rng(0xdac5eedULL);
  std::uint64_t runs_checked = 0;

  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(round);
    core::TaskGraph graph;
    if (round % 4 == 3) {
      graph = work::make_cholesky_tasks(
          {.n = 4 + static_cast<std::uint32_t>(rng.below(5)),
           .tile_elems = 4,  // 64-byte tiles: pressure comes from the counts
           .with_dependencies = true});
    } else {
      graph = work::make_layered_dag(
          {.num_layers = 3 + static_cast<std::uint32_t>(rng.below(3)),
           .tasks_per_layer = 5 + static_cast<std::uint32_t>(rng.below(10)),
           .num_data = 10 + static_cast<std::uint32_t>(rng.below(12)),
           .min_inputs = 1,
           .max_inputs = 3,
           .max_preds = 1 + static_cast<std::uint32_t>(rng.below(3)),
           .with_writes = (round % 2 == 0),
           .data_bytes = 10 + rng.below(91),
           .task_flops = 1e6,
           .seed = seed});
    }
    ASSERT_TRUE(graph.has_dependencies());
    const std::uint32_t num_gpus =
        1 + static_cast<std::uint32_t>(rng.below(4));

    core::Platform platform;
    platform.num_gpus = num_gpus;
    const std::uint64_t floor_bytes = graph.max_task_footprint();
    platform.gpu_memory_bytes =
        floor_bytes + rng.below(graph.working_set_bytes() - floor_bytes + 1) +
        8;
    platform.nvlink_enabled = (round % 5 == 0) && num_gpus > 1;
    platform.num_nodes = (round % 2 == 1 && num_gpus >= 2) ? 2 : 1;

    for (SchedulerCase& entry : make_schedulers()) {
      SCOPED_TRACE("round " + std::to_string(round) + " scheduler " +
                   entry.label + " gpus " + std::to_string(num_gpus) +
                   " nodes " + std::to_string(platform.num_nodes) + " mem " +
                   std::to_string(platform.gpu_memory_bytes));

      sim::EngineConfig config;
      config.seed = 11 + static_cast<std::uint64_t>(round);
      sim::RuntimeEngine engine(graph, platform, *entry.scheduler, config);
      sim::InvariantChecker checker({.fail_fast = false});
      engine.add_inspector(&checker);
      const core::RunMetrics metrics = engine.run();
      ++runs_checked;

      ASSERT_TRUE(checker.ok())
          << checker.report().error << "\nlast events:\n"
          << checker.report().excerpt;
      EXPECT_GT(checker.events_checked(), 0u);

      std::uint64_t executed = 0;
      for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
      EXPECT_EQ(executed, graph.num_tasks());
    }
  }
  EXPECT_EQ(runs_checked, static_cast<std::uint64_t>(kRounds) * 4);
}

TEST(Differential, OccupancyConfigsAcrossSchedulersStayInvariantFree) {
  // GPU-sharing differential sweep: the random-bipartite draw, re-annotated
  // with mixed warp footprints (including some whole-device tasks), run
  // across every scheduler while rounds rotate the occupancy config —
  // threshold below/at/above 1.0, tiny and roomy warp budgets, and a
  // sharing-off control round. Every run must be violation-free (the
  // checker enforces the admission gate and the warp budget) and complete
  // the identical task set.
  constexpr int kRounds = 20;
  util::Rng rng(0x0ccc0feedULL);
  std::uint64_t runs_checked = 0;
  // Rotation: exclusive control, conservative, exactly-full, oversubscribed.
  const double thresholds[] = {0.0, 0.6, 1.0, 1.5};

  for (int round = 0; round < kRounds; ++round) {
    const work::RandomBipartiteParams params =
        draw_params(rng, 9000 + static_cast<std::uint64_t>(round));
    const core::TaskGraph plain = work::make_random_bipartite(params);
    const std::uint32_t num_gpus =
        1 + static_cast<std::uint32_t>(rng.below(4));
    const std::uint32_t warps_per_gpu =
        4 + static_cast<std::uint32_t>(rng.below(13));

    // Re-build the draw with warp annotations: mixed small footprints and
    // ~1 in 5 unspecified (whole device), so admission, clamping and the
    // idle-GPU escape hatch are all exercised.
    core::TaskGraphBuilder builder;
    for (core::DataId data = 0; data < plain.num_data(); ++data) {
      builder.add_data(plain.data_size(data), plain.data_label(data));
    }
    for (TaskId task = 0; task < plain.num_tasks(); ++task) {
      const std::vector<core::DataId> inputs(plain.inputs(task).begin(),
                                             plain.inputs(task).end());
      const TaskId id = builder.add_task(plain.task_flops(task), inputs,
                                         plain.task_label(task));
      if (rng.below(5) != 0) {
        builder.set_task_warps(
            id, 1 + static_cast<std::uint32_t>(rng.below(2 * warps_per_gpu)));
      }
    }
    const core::TaskGraph graph = builder.build();

    core::Platform platform;
    platform.num_gpus = num_gpus;
    platform.gpu_memory_bytes = draw_memory(rng, graph, params);
    platform.sm_count = 1;
    platform.warps_per_sm = warps_per_gpu;
    platform.nvlink_enabled = (round % 5 == 0) && num_gpus > 1;

    for (SchedulerCase& entry : make_schedulers()) {
      SCOPED_TRACE("round " + std::to_string(round) + " scheduler " +
                   entry.label + " gpus " + std::to_string(num_gpus) +
                   " warps " + std::to_string(warps_per_gpu) + " threshold " +
                   std::to_string(thresholds[round % 4]) + " mem " +
                   std::to_string(platform.gpu_memory_bytes));

      sim::EngineConfig config;
      config.seed = 13 + static_cast<std::uint64_t>(round);
      config.occupancy_threshold = thresholds[round % 4];
      sim::RuntimeEngine engine(graph, platform, *entry.scheduler, config);
      sim::InvariantChecker checker({.fail_fast = false});
      engine.add_inspector(&checker);
      const core::RunMetrics metrics = engine.run();
      ++runs_checked;

      ASSERT_TRUE(checker.ok())
          << checker.report().error << "\nlast events:\n"
          << checker.report().excerpt;
      EXPECT_GT(checker.events_checked(), 0u);

      std::uint64_t executed = 0;
      for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
      EXPECT_EQ(executed, graph.num_tasks());
    }
  }
  EXPECT_EQ(runs_checked, static_cast<std::uint64_t>(kRounds) * 4);
}

/// Serving template for the SLO sweep: 4 data of 10 bytes, 6 tasks of 5 us
/// reading two neighbouring data each (the test_serve idiom on the
/// 1 byte/us, 1e-3 gflops test platform).
core::TaskGraph make_serving_template() {
  core::TaskGraphBuilder builder;
  std::vector<core::DataId> data;
  for (int i = 0; i < 4; ++i) {
    data.push_back(builder.add_data(10, "d" + std::to_string(i)));
  }
  for (TaskId t = 0; t < 6; ++t) {
    builder.add_task(5.0, {data[t % 4], data[(t + 1) % 4]},
                     "t" + std::to_string(t));
  }
  return builder.build();
}

TEST(Differential, SloServingConfigsAcrossSchedulersStayInvariantFree) {
  // SLO/batching differential sweep: randomized tier counts, batching
  // knobs (fusion window, batch cap, marginal compute), eviction
  // protection, anti-starvation aging and admission limits, streamed
  // across every scheduler under the online invariant checker. Every run
  // must be violation-free and retire every job exactly once, and each
  // round's batching-off control — the identical config with the master
  // switch off but every knob still set — must serialize byte-identically
  // to a config that never heard of SLO.
  constexpr int kRounds = 12;
  util::Rng rng(0x510ba7cedULL);
  std::uint64_t runs_checked = 0;
  const std::vector<core::TaskGraph> templates = {make_serving_template()};

  for (int round = 0; round < kRounds; ++round) {
    const std::uint32_t num_jobs = 16 + static_cast<std::uint32_t>(
                                            rng.below(17));  // 16..32
    const std::uint32_t num_gpus =
        2 + static_cast<std::uint32_t>(rng.below(3));
    const std::uint32_t num_tiers =
        1 + static_cast<std::uint32_t>(rng.below(4));

    core::Platform platform;
    platform.num_gpus = num_gpus;
    // Between "one job's footprint" and "roomy": eviction (and on
    // protected rounds, the veto scan) fires on the tight draws.
    platform.gpu_memory_bytes = 45 + rng.below(76);
    platform.gpu_gflops = 1e-3;
    platform.bus_bandwidth_bytes_per_s = 1e6;
    platform.bus_latency_us = 0.0;

    serve::ServeConfig config;
    config.arrival.mode = serve::ArrivalMode::kPoisson;
    config.arrival.rate_jobs_per_s = 5e4 + 1e4 * rng.below(16);
    config.arrival.seed = 100 + static_cast<std::uint64_t>(round);
    config.admission.max_jobs_in_flight =
        2 + static_cast<std::uint32_t>(rng.below(3));
    if (round % 3 == 1) config.admission.aging_rate_per_s = 2.0;
    config.engine.seed = 17 + static_cast<std::uint64_t>(round);
    config.slo.enabled = true;
    config.slo.tiers = slo::TierPolicy::even(num_tiers);
    if (round % 2 == 1) config.slo.protect_min_priority = num_tiers - 1;
    config.slo.batching = (round % 4 != 3);  // a no-batching control round
    config.slo.fusion_window_us = (round % 2 == 0) ? 0.0 : 200.0;
    config.slo.max_batch = 2 + static_cast<std::uint32_t>(rng.below(4));
    config.slo.marginal_compute = 0.2 + 0.1 * rng.below(7);

    std::vector<serve::JobSpec> jobs(num_jobs);
    for (std::uint32_t j = 0; j < num_jobs; ++j) {
      jobs[j].priority = j % num_tiers;
    }

    for (SchedulerCase& entry : make_schedulers()) {
      SCOPED_TRACE("round " + std::to_string(round) + " scheduler " +
                   entry.label + " gpus " + std::to_string(num_gpus) +
                   " tiers " + std::to_string(num_tiers) + " batch " +
                   std::to_string(config.slo.max_batch) + " mem " +
                   std::to_string(platform.gpu_memory_bytes));

      serve::ServeEngine engine(templates, jobs, platform, *entry.scheduler,
                                config);
      sim::InvariantChecker checker({.fail_fast = false});
      engine.add_inspector(&checker);
      const serve::ServeResult result = engine.run();
      ++runs_checked;

      ASSERT_TRUE(checker.ok())
          << checker.report().error << "\nlast events:\n"
          << checker.report().excerpt;
      EXPECT_GT(checker.events_checked(), 0u);
      EXPECT_EQ(result.serving.jobs_completed, num_jobs);
    }

    // Batching-off control: the master switch rules every knob, down to
    // the serialized byte.
    const auto run_json = [&](const slo::SloConfig& slo) {
      serve::ServeConfig off = config;
      off.slo = slo;
      sched::DmdaScheduler scheduler;
      serve::ServeEngine engine(templates, jobs, platform, scheduler, off);
      sim::RunReportCollector collector(
          {.context = "slo-diff-round-" + std::to_string(round),
           .collect_trace = true});
      engine.add_inspector(&collector);
      serve::ServeResult result = engine.run();
      sim::RunReport report = collector.report();
      report.serving = result.serving;
      return sim::run_report_to_json(report);
    };
    slo::SloConfig armed_but_off = config.slo;
    armed_but_off.enabled = false;
    EXPECT_EQ(run_json(slo::SloConfig{}), run_json(armed_but_off))
        << "round " << round << ": a disabled SLO config leaked into the run";
  }
  EXPECT_EQ(runs_checked, static_cast<std::uint64_t>(kRounds) * 4);
}

TEST(Differential, DartsLoadsApproachTheEvictionFreeLowerBound) {
  // With memory ample enough that no eviction is ever needed, DARTS's
  // data-centric planning should keep total loads within a small factor of
  // the "every used data lands once" floor.
  const core::TaskGraph graph = work::make_random_bipartite(
      {.num_tasks = 120, .num_data = 24, .min_inputs = 2, .max_inputs = 3,
       .data_bytes = 100, .task_flops = 1e6, .seed = 99});
  core::Platform platform;
  platform.num_gpus = 2;
  platform.gpu_memory_bytes = 24 * 100;  // everything fits

  core::DartsScheduler darts{core::DartsOptions{.use_luf = true}};
  sim::RuntimeEngine engine(graph, platform, darts);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error;

  std::uint64_t loads = 0;
  std::uint64_t evictions = 0;
  for (const auto& gpu : metrics.per_gpu) {
    loads += gpu.loads + gpu.peer_loads;
    evictions += gpu.evictions;
  }
  EXPECT_EQ(evictions, 0u);
  EXPECT_GE(loads, analysis::min_loads_lower_bound(graph));
  EXPECT_LE(loads, analysis::eviction_free_loads_upper_bound(
                       graph, platform.num_gpus));
}

}  // namespace
}  // namespace mg
