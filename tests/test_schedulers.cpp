#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hmetis_r.hpp"
#include "sched/ready.hpp"
#include "sched/work_queue_scheduler.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::sched {
namespace {

using core::DataId;
using core::TaskId;

core::Platform tiny_platform(std::uint32_t gpus, std::uint64_t memory) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.gpu_memory_bytes = memory;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  return platform;
}

/// MemoryView stub with an explicit set of resident data.
class StubMemory final : public core::MemoryView {
 public:
  explicit StubMemory(std::set<DataId> present = {})
      : present_(std::move(present)) {}
  [[nodiscard]] bool is_present(DataId data) const override {
    return present_.contains(data);
  }
  [[nodiscard]] bool is_present_or_fetching(DataId data) const override {
    return present_.contains(data);
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override { return 1000; }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return 10 * present_.size();
  }
  void add(DataId data) { present_.insert(data); }

 private:
  std::set<DataId> present_;
};

TEST(Eager, PopsInSubmissionOrder) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 2, .data_bytes = 10});
  EagerScheduler eager;
  eager.prepare(graph, tiny_platform(2, 100), 0);
  StubMemory memory;
  for (TaskId expected = 0; expected < 4; ++expected) {
    EXPECT_EQ(eager.pop_task(expected % 2, memory), expected);
  }
  EXPECT_EQ(eager.pop_task(0, memory), core::kInvalidTask);
}

TEST(Ready, PicksTaskWithFewestMissingBytes) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  const DataId d2 = builder.add_data(10);
  builder.add_task(1.0, {d0, d1});  // t0: 1 missing with d0 present
  builder.add_task(1.0, {d0});      // t1: 0 missing
  builder.add_task(1.0, {d2});      // t2: 1 missing
  const core::TaskGraph graph = builder.build();

  StubMemory memory({d0});
  std::deque<TaskId> queue{0, 1, 2};
  EXPECT_EQ(pop_ready(queue, graph, memory), 1u);
  EXPECT_EQ(queue.size(), 2u);
  // Next best: t0 (10 missing bytes) vs t2 (10): tie -> earliest in queue.
  EXPECT_EQ(pop_ready(queue, graph, memory), 0u);
}

TEST(Ready, WindowBoundsTheLookahead) {
  core::TaskGraphBuilder builder;
  const DataId far = builder.add_data(10);
  const DataId near = builder.add_data(10);
  for (int i = 0; i < 5; ++i) builder.add_task(1.0, {far});
  builder.add_task(1.0, {near});  // index 5, outside window of 3
  const core::TaskGraph graph = builder.build();

  StubMemory memory({near});
  std::deque<TaskId> queue{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(pop_ready(queue, graph, memory, /*window=*/3), 0u);
  EXPECT_EQ(pop_ready(queue, graph, memory, /*window=*/16), 5u);
}

TEST(Ready, EmptyQueueReturnsInvalid) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 1, .data_bytes = 10});
  StubMemory memory;
  std::deque<TaskId> queue;
  EXPECT_EQ(pop_ready(queue, graph, memory), core::kInvalidTask);
}

TEST(Dmda, BalancesIndependentTasksAcrossGpus) {
  // Tasks with disjoint data: completion-time model must spread them.
  core::TaskGraphBuilder builder;
  for (int i = 0; i < 8; ++i) {
    builder.add_task(100.0, {builder.add_data(10)});
  }
  const core::TaskGraph graph = builder.build();
  DmdaScheduler dmda(/*ready=*/false);
  dmda.prepare(graph, tiny_platform(2, 100), 0);
  EXPECT_EQ(dmda.queue(0).size(), 4u);
  EXPECT_EQ(dmda.queue(1).size(), 4u);
}

TEST(Dmda, PrefersGpuHoldingTheData) {
  // t0 and t1 share a data item; the predicted-InMem model should colocate
  // them even though gpu1 is idle (comm penalty dominates).
  core::TaskGraphBuilder builder;
  const DataId shared = builder.add_data(1000);
  builder.add_task(1.0, {shared});
  builder.add_task(1.0, {shared});
  const core::TaskGraph graph = builder.build();
  DmdaScheduler dmda(false);
  dmda.prepare(graph, tiny_platform(2, 10000), 0);
  EXPECT_EQ(dmda.queue(0).size(), 2u);
  EXPECT_TRUE(dmda.queue(1).empty());
}

TEST(Dmda, AllTasksAllocatedExactlyOnce) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 6, .data_bytes = 10});
  DmdaScheduler dmda;
  dmda.prepare(graph, tiny_platform(3, 1000), 0);
  std::vector<int> seen(graph.num_tasks(), 0);
  for (core::GpuId gpu = 0; gpu < 3; ++gpu) {
    for (TaskId task : dmda.queue(gpu)) ++seen[task];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int count) { return count == 1; }));
}

/// Minimal WorkQueueScheduler: round-robin partition in submission order.
class RoundRobinScheduler final : public WorkQueueScheduler {
 public:
  RoundRobinScheduler(bool stealing, bool ready)
      : WorkQueueScheduler(stealing, ready) {}
  [[nodiscard]] std::string_view name() const override { return "RR"; }

 protected:
  void partition(const core::TaskGraph& graph, const core::Platform& platform,
                 std::uint64_t, std::vector<std::deque<TaskId>>& queues) override {
    for (TaskId task = 0; task < graph.num_tasks(); ++task) {
      queues[task % platform.num_gpus].push_back(task);
    }
  }
};

TEST(WorkQueue, StealsHalfFromMostLoaded) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 9; ++i) builder.add_task(1.0, {d});
  const core::TaskGraph graph = builder.build();

  RoundRobinScheduler scheduler(/*stealing=*/true, /*ready=*/false);
  // Partition over 3 GPUs: 3 tasks each; drain gpu0, then it steals.
  scheduler.prepare(graph, tiny_platform(3, 100), 0);
  StubMemory memory;
  (void)scheduler.pop_task(0, memory);
  (void)scheduler.pop_task(0, memory);
  (void)scheduler.pop_task(0, memory);
  EXPECT_EQ(scheduler.queue(0).size(), 0u);
  const TaskId stolen = scheduler.pop_task(0, memory);
  EXPECT_NE(stolen, core::kInvalidTask);
  EXPECT_EQ(scheduler.steal_events(), 1u);
  // Victim had 3; thief took floor(3/2) = 1 (then popped it).
  EXPECT_EQ(scheduler.queue(1).size() + scheduler.queue(2).size(), 5u);
}

TEST(WorkQueue, NoStealingReturnsInvalidWhenDrained) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 4; ++i) builder.add_task(1.0, {d});
  const core::TaskGraph graph = builder.build();

  RoundRobinScheduler scheduler(/*stealing=*/false, /*ready=*/false);
  scheduler.prepare(graph, tiny_platform(2, 100), 0);
  StubMemory memory;
  (void)scheduler.pop_task(0, memory);
  (void)scheduler.pop_task(0, memory);
  EXPECT_EQ(scheduler.pop_task(0, memory), core::kInvalidTask);
  EXPECT_EQ(scheduler.queue(1).size(), 2u);
}

TEST(WorkQueue, StealTakesTailPreservingOrder) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {d});
  const core::TaskGraph graph = builder.build();

  RoundRobinScheduler scheduler(true, false);
  scheduler.prepare(graph, tiny_platform(2, 100), 0);
  // gpu0 holds {0,2,4,6}, gpu1 holds {1,3,5,7}. Drain gpu0.
  StubMemory memory;
  for (int i = 0; i < 4; ++i) (void)scheduler.pop_task(0, memory);
  // Steal: takes tail half of gpu1 = {5,7}; next pop returns 5.
  EXPECT_EQ(scheduler.pop_task(0, memory), 5u);
  EXPECT_EQ(scheduler.pop_task(0, memory), 7u);
  EXPECT_EQ(scheduler.queue(1).size(), 2u);
}

TEST(Hmetis, EndToEndOnMatmul) {
  const core::TaskGraph graph =
      work::make_matmul_2d({.n = 6, .data_bytes = 10});
  HmetisScheduler scheduler;
  sim::RuntimeEngine engine(graph, tiny_platform(2, 500), scheduler);
  const core::RunMetrics metrics = engine.run();
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed +
                metrics.per_gpu[1].tasks_executed,
            graph.num_tasks());
  // Partition must be roughly balanced before stealing; with stealing the
  // executed split stays within a factor.
  EXPECT_GT(metrics.per_gpu[0].tasks_executed, 0u);
  EXPECT_GT(metrics.per_gpu[1].tasks_executed, 0u);
}

/// Streamed graph for the priority tests: two 4-task jobs over one shared
/// data item, all landing on one GPU so dispatch order is the contention.
core::TaskGraph make_two_job_graph() {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(10);
  for (int i = 0; i < 8; ++i) builder.add_task(1.0, {d});
  return builder.build();
}

TEST(WorkQueue, HighPriorityJobDispatchesFirstUnderContention) {
  const core::TaskGraph graph = make_two_job_graph();
  RoundRobinScheduler scheduler(/*stealing=*/false, /*ready=*/false);
  ASSERT_TRUE(scheduler.begin_streaming());  // before prepare, as the
  scheduler.prepare(graph, tiny_platform(1, 100), 0);  // serving engine does

  // ServeEngine order: every job's priority is announced before arrivals.
  scheduler.notify_job_priority(0, 0);
  scheduler.notify_job_priority(1, 5);
  const std::vector<TaskId> job0 = {0, 1, 2, 3};
  const std::vector<TaskId> job1 = {4, 5, 6, 7};
  scheduler.notify_job_arrived(0, job0);
  scheduler.notify_job_arrived(1, job1);

  // Job 1 queued second but outranks job 0: its tasks pop first, each job
  // internally in submission order.
  StubMemory memory;
  const std::vector<TaskId> expected = {4, 5, 6, 7, 0, 1, 2, 3};
  for (const TaskId want : expected) {
    EXPECT_EQ(scheduler.pop_task(0, memory), want);
  }
  EXPECT_EQ(scheduler.pop_task(0, memory), core::kInvalidTask);
}

TEST(WorkQueue, HighPriorityArrivalPreemptsQueuedBacklog) {
  const core::TaskGraph graph = make_two_job_graph();
  RoundRobinScheduler scheduler(/*stealing=*/false, /*ready=*/false);
  ASSERT_TRUE(scheduler.begin_streaming());  // before prepare, as the
  scheduler.prepare(graph, tiny_platform(1, 100), 0);  // serving engine does
  scheduler.notify_job_priority(0, 0);
  scheduler.notify_job_priority(1, 9);

  StubMemory memory;
  const std::vector<TaskId> job0 = {0, 1, 2, 3};
  scheduler.notify_job_arrived(0, job0);
  EXPECT_EQ(scheduler.pop_task(0, memory), 0u);  // backlog starts draining

  // The high-priority job lands mid-stream: it jumps the remaining backlog.
  const std::vector<TaskId> job1 = {4, 5, 6, 7};
  scheduler.notify_job_arrived(1, job1);
  const std::vector<TaskId> expected = {4, 5, 6, 7, 1, 2, 3};
  for (const TaskId want : expected) {
    EXPECT_EQ(scheduler.pop_task(0, memory), want);
  }
}

TEST(WorkQueue, AllZeroPrioritiesKeepFifoOrder) {
  const core::TaskGraph graph = make_two_job_graph();
  RoundRobinScheduler scheduler(/*stealing=*/false, /*ready=*/false);
  ASSERT_TRUE(scheduler.begin_streaming());  // before prepare, as the
  scheduler.prepare(graph, tiny_platform(1, 100), 0);  // serving engine does
  scheduler.notify_job_priority(0, 0);
  scheduler.notify_job_priority(1, 0);
  const std::vector<TaskId> job0 = {0, 1, 2, 3};
  const std::vector<TaskId> job1 = {4, 5, 6, 7};
  scheduler.notify_job_arrived(0, job0);
  scheduler.notify_job_arrived(1, job1);

  StubMemory memory;
  for (TaskId want = 0; want < 8; ++want) {
    EXPECT_EQ(scheduler.pop_task(0, memory), want);
  }
}

}  // namespace
}  // namespace mg::sched
