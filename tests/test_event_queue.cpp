#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mg::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&order] { order.push_back(3); });
  queue.schedule_at(1.0, [&order] { order.push_back(1); });
  queue.schedule_at(2.0, [&order] { order.push_back(2); });
  queue.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  queue.run_until_empty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelativeToNow) {
  EventQueue queue;
  double second_time = -1.0;
  queue.schedule_at(10.0, [&queue, &second_time] {
    queue.schedule_after(5.0, [&queue, &second_time] {
      second_time = queue.now();
    });
  });
  queue.run_until_empty();
  EXPECT_DOUBLE_EQ(second_time, 15.0);
}

TEST(EventQueue, EventsScheduledDuringRunAreExecuted) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) queue.schedule_after(1.0, recurse);
  };
  queue.schedule_at(0.0, recurse);
  queue.run_until_empty();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(queue.now(), 99.0);
}

TEST(EventQueue, RunOneReportsEmptiness) {
  EventQueue queue;
  EXPECT_FALSE(queue.run_one());
  queue.schedule_at(1.0, [] {});
  EXPECT_TRUE(queue.run_one());
  EXPECT_FALSE(queue.run_one());
  EXPECT_EQ(queue.events_processed(), 1u);
}

TEST(EventQueue, ClockNeverGoesBackwards) {
  EventQueue queue;
  double last = 0.0;
  bool monotone = true;
  for (int i = 100; i > 0; --i) {
    queue.schedule_at(static_cast<double>(i), [&queue, &last, &monotone] {
      if (queue.now() < last) monotone = false;
      last = queue.now();
    });
  }
  queue.run_until_empty();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace mg::sim
