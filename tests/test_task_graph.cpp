#include "core/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mg::core {
namespace {

TEST(TaskGraphBuilder, BuildsForwardAndReverseCsr) {
  TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(20);
  const DataId d2 = builder.add_data(30);
  const TaskId t0 = builder.add_task(1.0, {d0, d1});
  const TaskId t1 = builder.add_task(2.0, {d1, d2});
  const TaskId t2 = builder.add_task(3.0, {d0});
  const TaskGraph graph = builder.build();

  ASSERT_EQ(graph.num_tasks(), 3u);
  ASSERT_EQ(graph.num_data(), 3u);

  EXPECT_EQ(std::vector<DataId>(graph.inputs(t0).begin(),
                                graph.inputs(t0).end()),
            (std::vector<DataId>{d0, d1}));
  EXPECT_EQ(std::vector<DataId>(graph.inputs(t2).begin(),
                                graph.inputs(t2).end()),
            (std::vector<DataId>{d0}));

  EXPECT_EQ(std::vector<TaskId>(graph.consumers(d0).begin(),
                                graph.consumers(d0).end()),
            (std::vector<TaskId>{t0, t2}));
  EXPECT_EQ(std::vector<TaskId>(graph.consumers(d1).begin(),
                                graph.consumers(d1).end()),
            (std::vector<TaskId>{t0, t1}));
  EXPECT_EQ(std::vector<TaskId>(graph.consumers(d2).begin(),
                                graph.consumers(d2).end()),
            (std::vector<TaskId>{t1}));
}

TEST(TaskGraphBuilder, CsrIsMutuallyConsistent) {
  TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 7; ++i) data.push_back(builder.add_data(5));
  builder.add_task(1.0, {data[0], data[3]});
  builder.add_task(1.0, {data[3], data[6]});
  builder.add_task(1.0, {data[1], data[2], data[5]});
  builder.add_task(1.0, {data[0]});
  const TaskGraph graph = builder.build();

  // Every (task, data) edge must appear in both directions, and edge counts
  // must match.
  std::size_t forward_edges = 0;
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    for (DataId input : graph.inputs(task)) {
      const auto consumers = graph.consumers(input);
      EXPECT_NE(std::find(consumers.begin(), consumers.end(), task),
                consumers.end());
      ++forward_edges;
    }
  }
  std::size_t reverse_edges = 0;
  for (DataId item = 0; item < graph.num_data(); ++item) {
    reverse_edges += graph.consumers(item).size();
  }
  EXPECT_EQ(forward_edges, reverse_edges);
}

TEST(TaskGraph, SizesFlopsAndAggregates) {
  TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(100);
  const DataId d1 = builder.add_data(250);
  builder.add_task(1.5, {d0});
  builder.add_task(2.5, {d0, d1});
  const TaskGraph graph = builder.build();

  EXPECT_EQ(graph.data_size(d0), 100u);
  EXPECT_EQ(graph.data_size(d1), 250u);
  EXPECT_DOUBLE_EQ(graph.task_flops(0), 1.5);
  EXPECT_DOUBLE_EQ(graph.total_flops(), 4.0);
  EXPECT_EQ(graph.working_set_bytes(), 350u);
  EXPECT_EQ(graph.input_bytes(1), 350u);
  EXPECT_EQ(graph.max_task_footprint(), 350u);
}

TEST(TaskGraph, LabelsAreOptional) {
  TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(1, "alpha");
  builder.add_task(1.0, {d0}, "t-alpha");
  const TaskGraph labeled = builder.build();
  EXPECT_EQ(labeled.data_label(d0), "alpha");
  EXPECT_EQ(labeled.task_label(0), "t-alpha");

  builder.clear();
  const DataId d = builder.add_data(1);
  builder.add_task(1.0, {d});
  const TaskGraph unlabeled = builder.build();
  EXPECT_EQ(unlabeled.task_label(0), "");
  EXPECT_EQ(unlabeled.data_label(0), "");
}

TEST(TaskGraphBuilder, ClearResetsState) {
  TaskGraphBuilder builder;
  builder.add_task(1.0, {builder.add_data(4)});
  builder.clear();
  EXPECT_EQ(builder.num_tasks(), 0u);
  EXPECT_EQ(builder.num_data(), 0u);
  const DataId d = builder.add_data(8);
  builder.add_task(2.0, {d});
  const TaskGraph graph = builder.build();
  EXPECT_EQ(graph.num_tasks(), 1u);
  EXPECT_EQ(graph.working_set_bytes(), 8u);
}

using TaskGraphDeathTest = TaskGraphBuilder;

TEST(TaskGraphDeathTest, RejectsDuplicateInputs) {
  TaskGraphBuilder builder;
  const DataId d = builder.add_data(4);
  EXPECT_DEATH(builder.add_task(1.0, {d, d}), "duplicate input");
}

TEST(TaskGraphDeathTest, RejectsUnknownData) {
  TaskGraphBuilder builder;
  (void)builder.add_data(4);
  EXPECT_DEATH(builder.add_task(1.0, {DataId{5}}), "not registered");
}

}  // namespace
}  // namespace mg::core
