// Occupancy-aware GPU sharing tests: the governor's budget arithmetic and
// admission/statistics contract, the engine's co-scheduling speedup on
// small-warp tasks and processor-sharing conservation under
// oversubscription, the sharing-off byte-identity guarantee of the schema-8
// report, a randomized warp-budget property sweep replayed against the
// admission event stream, co-running sets under GPU loss and planned node
// drains, and the serving-path composition (explicit JobSpec footprints
// through the union graph).
#include "occupancy/governor.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;
using occupancy::OccupancyGovernor;
using sim::InspectorEvent;
using sim::InspectorEventKind;

/// Trivial arithmetic (1 byte transfers in 1 us, 1 flop computes in 1 us)
/// with a tiny warp budget so a handful of warps saturates a device.
core::Platform tiny_platform(std::uint32_t gpus, std::uint32_t warps_per_gpu,
                             std::uint32_t nodes = 1) {
  core::Platform platform;
  platform.num_gpus = gpus;
  platform.num_nodes = nodes;
  platform.gpu_memory_bytes = 1000;
  platform.host_memory_bytes = 4000;
  platform.gpu_gflops = 1e-3;
  platform.bus_bandwidth_bytes_per_s = 1e6;
  platform.bus_latency_us = 0.0;
  platform.sm_count = 1;
  platform.warps_per_sm = warps_per_gpu;
  return platform;
}

/// `tasks` independent tasks of `flops` us each, all reading one shared
/// 10-byte input, each declaring a `warps` footprint.
core::TaskGraph warp_graph(std::uint32_t tasks, std::uint32_t warps,
                           double flops = 100.0) {
  core::TaskGraphBuilder builder;
  const DataId data = builder.add_data(10);
  for (std::uint32_t t = 0; t < tasks; ++t) {
    const TaskId id = builder.add_task(flops, {data});
    builder.set_task_warps(id, warps);
  }
  return builder.build();
}

class RecordingInspector final : public sim::Inspector {
 public:
  void on_event(const InspectorEvent& event) override {
    events_.push_back(event);
  }
  [[nodiscard]] const std::vector<InspectorEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(InspectorEventKind kind) const {
    std::size_t n = 0;
    for (const InspectorEvent& event : events_) {
      if (event.kind == kind) ++n;
    }
    return n;
  }

 private:
  std::vector<InspectorEvent> events_;
};

// ---------------------------------------------------------------------------
// Governor unit tests.

TEST(OccupancyGovernor, BudgetSitsStrictlyBelowTheLimit) {
  // Integral limits back off one warp (the rule is strict), fractional
  // limits floor.
  EXPECT_EQ(OccupancyGovernor(1, 5120, 1.0).budget_warps(), 5119u);
  EXPECT_EQ(OccupancyGovernor(1, 5120, 0.5).budget_warps(), 2559u);
  EXPECT_EQ(OccupancyGovernor(1, 10, 0.55).budget_warps(), 5u);
  EXPECT_EQ(OccupancyGovernor(1, 8, 2.1).budget_warps(), 16u);
}

TEST(OccupancyGovernor, ClampsUnspecifiedAndOversizedFootprints) {
  const OccupancyGovernor governor(1, 64, 1.0);
  EXPECT_EQ(governor.clamp_warps(0), 64u);    // unspecified = whole device
  EXPECT_EQ(governor.clamp_warps(500), 64u);  // clamped to the device
  EXPECT_EQ(governor.clamp_warps(10), 10u);
}

TEST(OccupancyGovernor, IdleGpuAlwaysAdmits) {
  // threshold 0.1 of 100 warps admits nothing larger than 9 warps onto a
  // busy GPU — but the idle device must still take a whole-device task.
  OccupancyGovernor governor(1, 100, 0.1);
  EXPECT_TRUE(governor.try_admit(0, 0, 0.0));  // whole device, idle: admitted
  EXPECT_EQ(governor.active_warps(0), 100u);
  EXPECT_FALSE(governor.try_admit(0, 1, 1.0));  // busy: even 1 warp crosses
  governor.release(0, 0, 2.0);
  EXPECT_EQ(governor.active_warps(0), 0u);
  EXPECT_TRUE(governor.try_admit(0, 5, 3.0));  // idle again
}

TEST(OccupancyGovernor, TalliesAdmissionsPairsAndOccupancy) {
  OccupancyGovernor governor(2, 10, 1.0);  // budget 9
  EXPECT_TRUE(governor.try_admit(0, 4, 0.0));
  EXPECT_TRUE(governor.try_admit(0, 4, 0.0));   // 1 co-run pair
  EXPECT_FALSE(governor.try_admit(0, 4, 0.0));  // 12 > 9: rejected
  EXPECT_TRUE(governor.try_admit(0, 1, 0.0));   // 2 more pairs
  EXPECT_EQ(governor.free_warps(0), 0u);
  EXPECT_EQ(governor.running_tasks(0), 3u);

  governor.release(0, 4, 10.0);
  governor.release(0, 4, 10.0);
  governor.release(0, 1, 10.0);
  // GPU 0 carried 9 active warps for 10 us; finalize at 20 us over a
  // 10-warp device: 90 / (20 * 10) = 0.45. GPU 1 stayed idle.
  const OccupancyGovernor::Stats stats = governor.finalize(20.0);
  ASSERT_EQ(stats.per_gpu.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.per_gpu[0].mean_occupancy, 0.45);
  EXPECT_EQ(stats.per_gpu[0].peak_warps, 9u);
  EXPECT_DOUBLE_EQ(stats.per_gpu[1].mean_occupancy, 0.0);
  EXPECT_EQ(stats.admissions, 3u);
  EXPECT_EQ(stats.rejections, 1u);
  EXPECT_EQ(stats.co_run_pairs, 3u);
}

// ---------------------------------------------------------------------------
// Engine sharing mode.

TEST(OccupancySharing, CoSchedulingBeatsExclusiveOnSmallTasks) {
  // Four 2-warp tasks on an 8-warp device (budget 7): three co-run at the
  // solo rate, so sharing roughly halves the serial makespan.
  const core::TaskGraph graph = warp_graph(4, 2);
  const core::Platform platform = tiny_platform(1, 8);

  const auto makespan = [&](double threshold) {
    sched::EagerScheduler scheduler;
    sim::RuntimeEngine engine(graph, platform, scheduler,
                              {.occupancy_threshold = threshold});
    sim::InvariantChecker checker({.fail_fast = false});
    engine.add_inspector(&checker);
    const core::RunMetrics metrics = engine.run();
    EXPECT_TRUE(checker.ok()) << checker.report().error;
    return metrics.makespan_us;
  };

  const double exclusive = makespan(0.0);
  const double shared = makespan(1.0);
  EXPECT_LT(shared, exclusive * 0.6)
      << "sharing " << shared << " vs exclusive " << exclusive;
}

TEST(OccupancySharing, OversubscriptionConservesThroughput) {
  // Two whole-device tasks co-run at threshold 2.1: slowdown 2 makes both
  // finish together exactly when exclusive ownership would finish the
  // second — processor sharing conserves total compute.
  const core::TaskGraph graph = warp_graph(2, 8, 100.0);
  const core::Platform platform = tiny_platform(1, 8);

  const auto run = [&](double threshold) {
    sched::EagerScheduler scheduler;
    sim::RuntimeEngine engine(graph, platform, scheduler,
                              {.occupancy_threshold = threshold});
    sim::InvariantChecker checker({.fail_fast = false});
    RecordingInspector recorder;
    engine.add_inspector(&checker);
    engine.add_inspector(&recorder);
    const core::RunMetrics metrics = engine.run();
    EXPECT_TRUE(checker.ok()) << checker.report().error;
    return std::pair(metrics.makespan_us, recorder.count(
                         InspectorEventKind::kTaskAdmitted));
  };

  const auto [exclusive, exclusive_admissions] = run(0.0);
  const auto [shared, shared_admissions] = run(2.1);
  EXPECT_EQ(exclusive_admissions, 0u);  // sharing off: no admission events
  EXPECT_EQ(shared_admissions, 2u);
  EXPECT_NEAR(shared, exclusive, 1.0);
}

TEST(OccupancySharing, SharingOffIsByteIdenticalDespiteFootprints) {
  // The same workload with and without warp annotations produces
  // byte-identical schema-8 reports at threshold 0: footprints are inert
  // until the governor is armed, and the occupancy section stays zeroed.
  const core::Platform platform = tiny_platform(2, 8);
  core::TaskGraphBuilder plain_builder;
  const DataId plain_data = plain_builder.add_data(10);
  for (std::uint32_t t = 0; t < 6; ++t) {
    plain_builder.add_task(50.0, {plain_data});
  }
  const core::TaskGraph plain = plain_builder.build();
  const core::TaskGraph annotated = warp_graph(6, 2, 50.0);

  const auto report_json = [&](const core::TaskGraph& graph,
                               sim::EngineConfig config) {
    sched::EagerScheduler scheduler;
    sim::RuntimeEngine engine(graph, platform, scheduler, config);
    sim::RunReportCollector collector(
        {.context = "identity", .collect_trace = false});
    engine.add_inspector(&collector);
    (void)engine.run();
    return run_report_to_json(collector.report());
  };

  const std::string a = report_json(plain, {});
  const std::string b = report_json(annotated, {.occupancy_threshold = 0.0});
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"occupancy\":{\"enabled\":false"), std::string::npos);
  EXPECT_NE(a.find("\"co_run_pairs\":0"), std::string::npos);
}

TEST(OccupancySharing, WarpBudgetPropertyNeverExceeded) {
  // Randomized graphs (mixed footprints, some whole-device) under random
  // thresholds: replaying the admission stream must show every admission
  // onto a busy GPU staying within the advertised budget, and the checker
  // must agree event by event.
  std::mt19937 rng(20260809);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t gpus = 1 + rng() % 3;
    const std::uint32_t warps_per_gpu = 4 + rng() % 13;
    const std::uint32_t tasks = 8 + rng() % 17;
    const double threshold = 0.3 + 0.1 * static_cast<double>(rng() % 18);

    core::TaskGraphBuilder builder;
    const DataId data = builder.add_data(10);
    for (std::uint32_t t = 0; t < tasks; ++t) {
      const TaskId id =
          builder.add_task(20.0 + static_cast<double>(rng() % 100), {data});
      // ~1 in 5 tasks keeps the unspecified (whole device) footprint.
      if (rng() % 5 != 0) {
        builder.set_task_warps(id, 1 + rng() % (2 * warps_per_gpu));
      }
    }
    const core::TaskGraph graph = builder.build();
    const core::Platform platform = tiny_platform(gpus, warps_per_gpu);

    sched::EagerScheduler scheduler;
    sim::RuntimeEngine engine(graph, platform, scheduler,
                              {.occupancy_threshold = threshold});
    sim::InvariantChecker checker({.fail_fast = false});
    RecordingInspector recorder;
    engine.add_inspector(&checker);
    engine.add_inspector(&recorder);
    ASSERT_NO_THROW(engine.run()) << "trial " << trial;
    EXPECT_TRUE(checker.ok()) << "trial " << trial << ": "
                              << checker.report().error;

    std::uint32_t budget = 0;
    std::vector<std::uint32_t> active(gpus, 0);
    std::vector<std::uint32_t> running(gpus, 0);
    std::vector<std::uint32_t> warps(graph.num_tasks(), 0);
    for (const InspectorEvent& event : recorder.events()) {
      switch (event.kind) {
        case InspectorEventKind::kOccupancyConfig:
          budget = static_cast<std::uint32_t>(event.bytes);
          break;
        case InspectorEventKind::kTaskAdmitted:
          if (running[event.gpu] > 0) {
            EXPECT_LE(active[event.gpu] + event.bytes, budget)
                << "trial " << trial << ": busy admission crossed the budget";
          }
          active[event.gpu] += static_cast<std::uint32_t>(event.bytes);
          warps[event.id] = static_cast<std::uint32_t>(event.bytes);
          ++running[event.gpu];
          EXPECT_EQ(event.aux, active[event.gpu]);
          break;
        case InspectorEventKind::kTaskEnd:
          if (running[event.gpu] > 0) {
            active[event.gpu] -= warps[event.id];
            --running[event.gpu];
          }
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(recorder.count(InspectorEventKind::kOccupancyConfig), 1u);
    EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd),
              graph.num_tasks());
  }
}

TEST(OccupancySharing, CoRunningSetSurvivesGpuLoss) {
  // GPU 0 dies while several kernels co-run on it: the whole running set is
  // orphaned, re-runs on the survivor, and the warp accounting unwinds
  // cleanly (the checker re-proves the exactly-once budget hand-back).
  const core::TaskGraph graph = warp_graph(8, 2, 100.0);
  sim::FaultPlan plan;
  plan.gpu_losses.push_back({50.0, 0});
  sim::FaultInjector injector(plan);

  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, tiny_platform(2, 8), scheduler,
                            {.occupancy_threshold = 1.0});
  engine.set_fault_injector(&injector);
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);

  core::RunMetrics metrics;
  ASSERT_NO_THROW(metrics = engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_GE(metrics.faults.tasks_reclaimed, 2u)
      << "the loss should orphan a whole co-running set, not one task";
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
}

TEST(OccupancySharing, CoRunningUnderPlannedDrainLosesNoProgress) {
  // A node drain while its GPUs co-run kernels: the drain fences new work,
  // lets every co-runner finish, and retires with zero reclaims.
  const core::TaskGraph graph = warp_graph(16, 2, 40.0);
  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, tiny_platform(4, 8, 2), scheduler,
                            {.occupancy_threshold = 1.0});
  sim::InvariantChecker checker({.fail_fast = false});
  RecordingInspector recorder;
  engine.add_inspector(&checker);
  engine.add_inspector(&recorder);
  engine.event_queue().schedule_at(30.0,
                                   [&engine] { engine.begin_node_drain(1); });

  core::RunMetrics metrics;
  ASSERT_NO_THROW(metrics = engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(recorder.count(InspectorEventKind::kNodeDrained), 1u);
  EXPECT_EQ(recorder.count(InspectorEventKind::kTaskEnd), graph.num_tasks());
  EXPECT_EQ(metrics.faults.tasks_reclaimed, 0u);
}

// ---------------------------------------------------------------------------
// Serving composition.

TEST(OccupancyServe, ExplicitJobFootprintsComposeWithAdmission) {
  // Jobs override the template footprint through JobSpec::warps; the
  // governor co-schedules across job boundaries and the schema-8 section
  // reports it.
  core::TaskGraphBuilder builder;
  const DataId data = builder.add_data(10);
  for (std::uint32_t t = 0; t < 4; ++t) {
    builder.add_task(50.0, {data});  // template leaves footprints unset
  }
  const std::vector<core::TaskGraph> templates = {builder.build()};
  std::vector<serve::JobSpec> jobs(8);
  for (serve::JobSpec& job : jobs) job.warps = 2;

  serve::ServeConfig config;
  config.arrival.mode = serve::ArrivalMode::kPoisson;
  config.arrival.rate_jobs_per_s = 5000.0;
  config.arrival.seed = 7;
  config.admission.max_jobs_in_flight = 8;
  config.engine.occupancy_threshold = 1.0;

  sched::DmdaScheduler scheduler;
  serve::ServeEngine engine(templates, jobs, tiny_platform(2, 8), scheduler,
                            config);
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&checker);
  sim::RunReportCollector collector(
      {.context = "occupancy-serve", .collect_trace = false});
  engine.add_inspector(&collector);

  serve::ServeResult result;
  ASSERT_NO_THROW(result = engine.run());
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(result.serving.jobs_completed, 8u);

  const sim::RunReport::Occupancy& occ = collector.report().occupancy;
  EXPECT_TRUE(occ.enabled);
  EXPECT_EQ(occ.total_warps, 8u);
  EXPECT_EQ(occ.budget_warps, 7u);
  EXPECT_GT(occ.co_run_pairs, 0u) << "explicit 2-warp footprints should "
                                     "co-run across job boundaries";
  EXPECT_EQ(occ.admissions, 32u);  // every task admitted exactly once
  std::uint32_t peak = 0;
  for (const sim::RunReport::Occupancy::Gpu& gpu : occ.per_gpu) {
    peak = std::max(peak, gpu.peak_warps);
  }
  EXPECT_GT(peak, 2u);  // more than one 2-warp kernel resident at once
  EXPECT_LE(peak, 7u);  // never past the budget (no whole-device tasks here)
}

}  // namespace
}  // namespace mg
