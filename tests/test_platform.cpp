#include "core/platform.hpp"

#include <gtest/gtest.h>

#include "core/memory_view.hpp"

namespace mg::core {
namespace {

TEST(Platform, DefaultsMatchThePaperTestbed) {
  const Platform platform;
  EXPECT_EQ(platform.num_gpus, 1u);
  EXPECT_EQ(platform.gpu_memory_bytes, 500 * kMB);
  EXPECT_DOUBLE_EQ(platform.gpu_gflops, 13253.0);
  EXPECT_DOUBLE_EQ(platform.bus_bandwidth_bytes_per_s, 16e9);
  EXPECT_FALSE(platform.nvlink_enabled);
}

TEST(Platform, TransferTimeIsLatencyPlusBandwidth) {
  Platform platform;
  platform.bus_latency_us = 15.0;
  platform.bus_bandwidth_bytes_per_s = 16e9;
  // 16 MB over 16 GB/s = 1 ms + 15 us latency.
  EXPECT_NEAR(platform.transfer_time_us(16'000'000), 1015.0, 1e-9);
  EXPECT_NEAR(platform.transfer_time_us(0), 15.0, 1e-12);
}

TEST(Platform, ComputeTimeFromFlops) {
  const Platform platform;
  // 13253 GFlop at 13253 GFlop/s = 1 second.
  EXPECT_NEAR(platform.compute_time_us(13253.0 * 1e9), 1e6, 1e-3);
}

TEST(Platform, PaperTaskTakesAboutHalfAMillisecond) {
  const Platform platform;
  // One 2D-matmul task: 480 flops/byte * 14 MB = 6.72 GFlop.
  EXPECT_NEAR(platform.compute_time_us(480.0 * 14e6), 507.0, 0.5);
  // Its data item takes longer to transfer than the task to compute —
  // the ratio that makes data reuse the whole game.
  EXPECT_GT(platform.transfer_time_us(14 * kMB),
            platform.compute_time_us(480.0 * 14e6));
}

TEST(Platform, CumulatedMemoryAndPeak) {
  const Platform platform = make_v100_platform(4, 250 * kMB);
  EXPECT_EQ(platform.cumulated_memory_bytes(), 1000 * kMB);
  EXPECT_DOUBLE_EQ(platform.peak_gflops(), 4 * 13253.0);
}

TEST(Platform, NvlinkFasterThanHostBus) {
  Platform platform;
  platform.nvlink_enabled = true;
  // Same payload: peer link (50 GB/s, 5 us) vs host (16 GB/s, 15 us).
  EXPECT_LT(platform.nvlink_transfer_time_us(14 * kMB),
            platform.transfer_time_us(14 * kMB));
}

TEST(Platform, EveryLinkPricesThroughTheSharedCostModel) {
  // One formula for all three link kinds: latency + bytes / bandwidth.
  Platform platform;
  platform.nvlink_enabled = true;
  const std::uint64_t bytes = 14 * kMB;
  EXPECT_DOUBLE_EQ(platform.transfer_time_us(bytes),
                   Platform::link_time_us(bytes,
                                          platform.bus_bandwidth_bytes_per_s,
                                          platform.bus_latency_us));
  EXPECT_DOUBLE_EQ(
      platform.nvlink_transfer_time_us(bytes),
      Platform::link_time_us(bytes, platform.nvlink_bandwidth_bytes_per_s,
                             platform.nvlink_latency_us));
  EXPECT_DOUBLE_EQ(
      platform.net_transfer_time_us(bytes),
      Platform::link_time_us(bytes, platform.net_bandwidth_bytes_per_s,
                             platform.net_latency_us));
}

TEST(Platform, ZeroByteTransfersCostExactlyTheLatency) {
  Platform platform;
  platform.bus_latency_us = 15.0;
  platform.net_latency_us = 25.0;
  platform.nvlink_latency_us = 5.0;
  EXPECT_DOUBLE_EQ(platform.transfer_time_us(0), 15.0);
  EXPECT_DOUBLE_EQ(platform.net_transfer_time_us(0), 25.0);
  EXPECT_DOUBLE_EQ(platform.nvlink_transfer_time_us(0), 5.0);
  // A zero-byte inter-node move still pays two PCI setups plus one network
  // round: latency never amortizes away.
  EXPECT_DOUBLE_EQ(platform.internode_transfer_time_us(0), 2 * 15.0 + 25.0);
}

TEST(Platform, LatencyDominatesSmallMessages) {
  const Platform platform;
  // 1 byte over 12.5 GB/s is ~0.08 ns of bandwidth against 25 us of
  // latency: the fixed cost is essentially the whole transfer.
  const double time = platform.net_transfer_time_us(1);
  EXPECT_GT(time, platform.net_latency_us);
  EXPECT_LT(time - platform.net_latency_us, 1e-3);
}

TEST(Platform, InternodeTransferIsTwoPciHopsPlusOneNetworkHop) {
  Platform platform;
  platform.num_nodes = 2;
  const std::uint64_t bytes = 14 * kMB;
  EXPECT_DOUBLE_EQ(platform.internode_transfer_time_us(bytes),
                   2.0 * platform.transfer_time_us(bytes) +
                       platform.net_transfer_time_us(bytes));
  // The network hop makes remote strictly slower than a local PCI load.
  EXPECT_GT(platform.internode_transfer_time_us(bytes),
            platform.transfer_time_us(bytes));
}

TEST(Platform, NodeTopologyMapsContiguousGpuBlocks) {
  Platform platform;
  platform.num_gpus = 4;
  platform.num_nodes = 2;
  EXPECT_TRUE(platform.is_cluster());
  EXPECT_EQ(platform.node_of(0), 0u);
  EXPECT_EQ(platform.node_of(1), 0u);
  EXPECT_EQ(platform.node_of(2), 1u);
  EXPECT_EQ(platform.node_of(3), 1u);
  EXPECT_EQ(platform.node_gpu_begin(0), 0u);
  EXPECT_EQ(platform.node_gpu_end(0), 2u);
  EXPECT_EQ(platform.node_gpu_begin(1), 2u);
  EXPECT_EQ(platform.node_gpu_end(1), 4u);
  // Round-robin data homes.
  EXPECT_EQ(platform.home_node_of(0), 0u);
  EXPECT_EQ(platform.home_node_of(1), 1u);
  EXPECT_EQ(platform.home_node_of(2), 0u);
}

TEST(Platform, UnevenGpuCountsSplitWithoutGapsOrOverlap) {
  Platform platform;
  platform.num_gpus = 5;
  platform.num_nodes = 2;
  // Blocks partition [0, 5): every GPU belongs to exactly the node whose
  // [begin, end) contains it.
  for (GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
    const NodeId node = platform.node_of(gpu);
    EXPECT_GE(gpu, platform.node_gpu_begin(node));
    EXPECT_LT(gpu, platform.node_gpu_end(node));
  }
  EXPECT_EQ(platform.node_gpu_begin(0), 0u);
  EXPECT_EQ(platform.node_gpu_end(1), 5u);
  EXPECT_EQ(platform.node_gpu_end(0), platform.node_gpu_begin(1));
}

TEST(Platform, SingleNodeIsNotACluster) {
  Platform platform;
  platform.num_gpus = 4;
  EXPECT_FALSE(platform.is_cluster());
  EXPECT_EQ(platform.node_of(3), 0u);
  EXPECT_EQ(platform.node_gpu_end(0), 4u);
  EXPECT_EQ(platform.home_node_of(7), 0u);
}

TEST(MemoryView, FreeBytesDerivesFromCapacityAndUse) {
  class Stub final : public MemoryView {
   public:
    [[nodiscard]] bool is_present(DataId) const override { return false; }
    [[nodiscard]] bool is_present_or_fetching(DataId) const override {
      return false;
    }
    [[nodiscard]] std::uint64_t capacity_bytes() const override { return 100; }
    [[nodiscard]] std::uint64_t used_bytes() const override { return 30; }
  };
  Stub stub;
  EXPECT_EQ(stub.free_bytes(), 70u);
}

}  // namespace
}  // namespace mg::core
