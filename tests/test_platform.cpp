#include "core/platform.hpp"

#include <gtest/gtest.h>

#include "core/memory_view.hpp"

namespace mg::core {
namespace {

TEST(Platform, DefaultsMatchThePaperTestbed) {
  const Platform platform;
  EXPECT_EQ(platform.num_gpus, 1u);
  EXPECT_EQ(platform.gpu_memory_bytes, 500 * kMB);
  EXPECT_DOUBLE_EQ(platform.gpu_gflops, 13253.0);
  EXPECT_DOUBLE_EQ(platform.bus_bandwidth_bytes_per_s, 16e9);
  EXPECT_FALSE(platform.nvlink_enabled);
}

TEST(Platform, TransferTimeIsLatencyPlusBandwidth) {
  Platform platform;
  platform.bus_latency_us = 15.0;
  platform.bus_bandwidth_bytes_per_s = 16e9;
  // 16 MB over 16 GB/s = 1 ms + 15 us latency.
  EXPECT_NEAR(platform.transfer_time_us(16'000'000), 1015.0, 1e-9);
  EXPECT_NEAR(platform.transfer_time_us(0), 15.0, 1e-12);
}

TEST(Platform, ComputeTimeFromFlops) {
  const Platform platform;
  // 13253 GFlop at 13253 GFlop/s = 1 second.
  EXPECT_NEAR(platform.compute_time_us(13253.0 * 1e9), 1e6, 1e-3);
}

TEST(Platform, PaperTaskTakesAboutHalfAMillisecond) {
  const Platform platform;
  // One 2D-matmul task: 480 flops/byte * 14 MB = 6.72 GFlop.
  EXPECT_NEAR(platform.compute_time_us(480.0 * 14e6), 507.0, 0.5);
  // Its data item takes longer to transfer than the task to compute —
  // the ratio that makes data reuse the whole game.
  EXPECT_GT(platform.transfer_time_us(14 * kMB),
            platform.compute_time_us(480.0 * 14e6));
}

TEST(Platform, CumulatedMemoryAndPeak) {
  const Platform platform = make_v100_platform(4, 250 * kMB);
  EXPECT_EQ(platform.cumulated_memory_bytes(), 1000 * kMB);
  EXPECT_DOUBLE_EQ(platform.peak_gflops(), 4 * 13253.0);
}

TEST(Platform, NvlinkFasterThanHostBus) {
  Platform platform;
  platform.nvlink_enabled = true;
  // Same payload: peer link (50 GB/s, 5 us) vs host (16 GB/s, 15 us).
  EXPECT_LT(platform.nvlink_transfer_time_us(14 * kMB),
            platform.transfer_time_us(14 * kMB));
}

TEST(MemoryView, FreeBytesDerivesFromCapacityAndUse) {
  class Stub final : public MemoryView {
   public:
    [[nodiscard]] bool is_present(DataId) const override { return false; }
    [[nodiscard]] bool is_present_or_fetching(DataId) const override {
      return false;
    }
    [[nodiscard]] std::uint64_t capacity_bytes() const override { return 100; }
    [[nodiscard]] std::uint64_t used_bytes() const override { return 30; }
  };
  Stub stub;
  EXPECT_EQ(stub.free_bytes(), 70u);
}

}  // namespace
}  // namespace mg::core
