// Inspector subsystem tests: the online invariant checker (clean runs pass,
// corrupted event streams are caught with a precise diagnostic and log
// excerpt) and the run-report collector (aggregates match engine metrics,
// JSON output is schema-valid, the mirrored trace exports to Chrome JSON).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_export.hpp"
#include "core/darts.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sim/engine.hpp"
#include "sim/inspector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/json.hpp"
#include "workloads/workloads.hpp"

namespace mg {
namespace {

using core::DataId;
using core::TaskId;
using sim::InspectorEvent;
using sim::InspectorEventKind;
using sim::InvariantChecker;
using sim::RunReportCollector;

InvariantChecker::Options recording_options() {
  InvariantChecker::Options options;
  options.fail_fast = false;
  return options;
}

/// d0, d1 of 10 bytes; t0{d0}, t1{d0,d1}.
core::TaskGraph small_graph() {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(10);
  builder.add_task(1.0, {d0});
  builder.add_task(1.0, {d0, d1});
  return builder.build();
}

core::Platform small_platform(std::uint64_t memory = 100) {
  core::Platform platform;
  platform.num_gpus = 1;
  platform.gpu_memory_bytes = memory;
  return platform;
}

InspectorEvent make_event(double time_us, InspectorEventKind kind,
                          core::GpuId gpu, std::uint32_t id,
                          std::uint64_t bytes = 0,
                          std::uint32_t channel = sim::kNoChannel,
                          std::uint32_t aux = 0) {
  InspectorEvent event;
  event.time_us = time_us;
  event.kind = kind;
  event.gpu = gpu;
  event.id = id;
  event.bytes = bytes;
  event.channel = channel;
  event.aux = aux;
  return event;
}

/// The online event stream of a correct single-GPU run of small_graph().
std::vector<InspectorEvent> valid_stream() {
  return {
      make_event(0.0, InspectorEventKind::kFetchStart, 0, 0, 10,
                 sim::kNoChannel, 1),
      make_event(0.0, InspectorEventKind::kTransferStart, 0, 0, 10,
                 sim::kChannelHostBus),
      make_event(1.0, InspectorEventKind::kTransferEnd, 0, 0, 10,
                 sim::kChannelHostBus),
      make_event(1.0, InspectorEventKind::kLoadComplete, 0, 0, 10),
      make_event(1.0, InspectorEventKind::kNotifyDataLoaded, 0, 0),
      make_event(1.0, InspectorEventKind::kTaskStart, 0, 0),
      make_event(2.0, InspectorEventKind::kFetchStart, 0, 1, 10,
                 sim::kNoChannel, 1),
      make_event(3.0, InspectorEventKind::kTaskEnd, 0, 0),
      make_event(3.0, InspectorEventKind::kNotifyTaskComplete, 0, 0),
      make_event(4.0, InspectorEventKind::kLoadComplete, 0, 1, 10),
      make_event(5.0, InspectorEventKind::kTaskStart, 0, 1),
      make_event(6.0, InspectorEventKind::kTaskEnd, 0, 1),
      make_event(6.0, InspectorEventKind::kNotifyTaskComplete, 0, 1),
  };
}

InvariantChecker::Report run_stream(const std::vector<InspectorEvent>& events) {
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform();
  InvariantChecker checker(recording_options());
  checker.on_run_begin(graph, platform, "test");
  for (const InspectorEvent& event : events) checker.on_event(event);
  checker.finish();
  return checker.report();
}

TEST(InvariantChecker, AcceptsAValidStream) {
  const auto report = run_stream(valid_stream());
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(InvariantChecker, CatchesTaskStartWithMissingInput) {
  auto events = valid_stream();
  // Evict d0 right before t1 starts (t1 reads d0 and d1).
  events.insert(events.begin() + 10,
                make_event(4.5, InspectorEventKind::kEvict, 0, 0, 10));
  const auto report = run_stream(events);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("missing input"), std::string::npos);
  EXPECT_NE(report.error.find("t=5.000us"), std::string::npos)
      << "diagnostic should pin-point the offending event: " << report.error;
  // The excerpt must show the eviction that set the violation up.
  EXPECT_NE(report.excerpt.find("evict d0"), std::string::npos)
      << report.excerpt;
}

TEST(InvariantChecker, CatchesMemoryOvercommit) {
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform(/*memory=*/15);
  InvariantChecker checker(recording_options());
  checker.on_run_begin(graph, platform, "test");
  checker.on_event(make_event(0.0, InspectorEventKind::kFetchStart, 0, 0, 10,
                              sim::kNoChannel, 1));
  checker.on_event(make_event(0.1, InspectorEventKind::kFetchStart, 0, 1, 10,
                              sim::kNoChannel, 1));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().error.find("memory bound exceeded"),
            std::string::npos);
}

TEST(InvariantChecker, CatchesOverlappingTransfersOnOneChannel) {
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform();
  InvariantChecker checker(recording_options());
  checker.on_run_begin(graph, platform, "test");
  checker.on_event(make_event(0.0, InspectorEventKind::kTransferStart, 0, 0,
                              10, sim::kChannelHostBus));
  checker.on_event(make_event(0.5, InspectorEventKind::kTransferStart, 0, 1,
                              10, sim::kChannelHostBus));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().error.find("overlapping transfers"),
            std::string::npos);
}

TEST(InvariantChecker, CatchesEvictionOfInputOfRunningTask) {
  auto events = valid_stream();
  // t0 is running between indices 5 and 7; evict its input d0 in between.
  events.insert(events.begin() + 6,
                make_event(1.5, InspectorEventKind::kEvict, 0, 0, 10));
  const auto report = run_stream(events);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("in use by the running task"),
            std::string::npos);
}

TEST(InvariantChecker, CatchesDoubleExecution) {
  auto events = valid_stream();
  events.push_back(make_event(7.0, InspectorEventKind::kTaskStart, 0, 0));
  const auto report = run_stream(events);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("started twice"), std::string::npos);
}

TEST(InvariantChecker, CatchesMissingCompletionNotification) {
  auto events = valid_stream();
  events.erase(events.begin() + 8);  // drop t0's notify_task_complete
  const auto report = run_stream(events);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("never notified"), std::string::npos);
}

TEST(InvariantChecker, CatchesNotifyLoadForAbsentData) {
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform();
  InvariantChecker checker(recording_options());
  checker.on_run_begin(graph, platform, "test");
  checker.on_event(
      make_event(0.0, InspectorEventKind::kNotifyDataLoaded, 0, 0));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().error.find("non-resident"), std::string::npos);
}

TEST(InvariantChecker, CatchesLoadWithoutFetch) {
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform();
  InvariantChecker checker(recording_options());
  checker.on_run_begin(graph, platform, "test");
  checker.on_event(make_event(0.0, InspectorEventKind::kLoadComplete, 0, 0, 10));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().error.find("without a preceding fetch"),
            std::string::npos);
}

TEST(InvariantChecker, ExcerptHoldsTheEventsLeadingUpToTheViolation) {
  InvariantChecker::Options options = recording_options();
  options.log_window = 4;
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform();
  InvariantChecker checker(options);
  checker.on_run_begin(graph, platform, "test");
  for (const InspectorEvent& event : valid_stream()) checker.on_event(event);
  checker.on_event(make_event(7.0, InspectorEventKind::kEvict, 0, 1, 10));
  checker.on_event(make_event(8.0, InspectorEventKind::kEvict, 0, 1, 10));
  const auto& report = checker.report();
  EXPECT_FALSE(report.ok);
  // The window holds at most 4 lines and the last one is the bad evict.
  const auto lines = std::count(report.excerpt.begin(), report.excerpt.end(), '\n');
  EXPECT_LE(lines, 4);
  EXPECT_NE(report.excerpt.find("t=8.000us"), std::string::npos);
}

TEST(InvariantChecker, FirstViolationWins) {
  const core::TaskGraph graph = small_graph();
  const core::Platform platform = small_platform();
  InvariantChecker checker(recording_options());
  checker.on_run_begin(graph, platform, "test");
  checker.on_event(make_event(0.0, InspectorEventKind::kEvict, 0, 0, 10));
  checker.on_event(make_event(1.0, InspectorEventKind::kTaskStart, 0, 5));
  checker.finish();
  EXPECT_NE(checker.report().error.find("non-resident"), std::string::npos);
}

// --- Online checking against the real engine ------------------------------

template <typename SchedulerT, typename... Args>
void expect_clean_run(const core::TaskGraph& graph,
                      const core::Platform& platform, Args&&... args) {
  SchedulerT scheduler(std::forward<Args>(args)...);
  sim::RuntimeEngine engine(graph, platform, scheduler);
  InvariantChecker checker(recording_options());
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error << "\n"
                            << checker.report().excerpt;
  EXPECT_GT(checker.events_checked(), 0u);
  std::uint64_t executed = 0;
  for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
  EXPECT_EQ(executed, graph.num_tasks());
}

TEST(OnlineChecking, EagerOnTightMemory) {
  const auto graph = work::make_matmul_2d({.n = 8, .data_bytes = 14 * core::kMB});
  expect_clean_run<sched::EagerScheduler>(graph,
                                          core::make_v100_platform(2, 100 * core::kMB));
}

TEST(OnlineChecking, DmdaWithPrefetchAndOutputs) {
  const auto graph = work::make_cholesky_tasks({.n = 8});
  expect_clean_run<sched::DmdaScheduler>(graph,
                                         core::make_v100_platform(2, 150 * core::kMB));
}

TEST(OnlineChecking, DartsLufWithNvlink) {
  const auto graph = work::make_matmul_2d({.n = 8, .data_bytes = 14 * core::kMB});
  core::Platform platform = core::make_v100_platform(2, 100 * core::kMB);
  platform.nvlink_enabled = true;
  expect_clean_run<core::DartsScheduler>(
      graph, platform, core::DartsOptions{.use_luf = true});
}

TEST(OnlineChecking, HfpOnSparse) {
  const auto graph =
      work::make_sparse_matmul({.n = 20, .keep_fraction = 0.1, .seed = 3});
  expect_clean_run<sched::HfpScheduler>(graph,
                                        core::make_v100_platform(2, 120 * core::kMB));
}

// --- Run report collector -------------------------------------------------

TEST(RunReport, AggregatesMatchEngineMetrics) {
  const auto graph = work::make_matmul_2d({.n = 8, .data_bytes = 14 * core::kMB});
  const core::Platform platform = core::make_v100_platform(2, 100 * core::kMB);
  sched::DmdaScheduler scheduler;
  sim::RuntimeEngine engine(graph, platform, scheduler);
  RunReportCollector collector;
  engine.add_inspector(&collector);
  const core::RunMetrics metrics = engine.run();

  const sim::RunReport& report = collector.report();
  EXPECT_EQ(report.scheduler, scheduler.name());
  EXPECT_EQ(report.num_gpus, 2u);
  EXPECT_DOUBLE_EQ(report.makespan_us, metrics.makespan_us);
  ASSERT_EQ(report.per_gpu.size(), metrics.per_gpu.size());
  for (std::size_t gpu = 0; gpu < report.per_gpu.size(); ++gpu) {
    EXPECT_EQ(report.per_gpu[gpu].tasks_executed,
              metrics.per_gpu[gpu].tasks_executed);
    EXPECT_EQ(report.per_gpu[gpu].loads, metrics.per_gpu[gpu].loads);
    EXPECT_EQ(report.per_gpu[gpu].evictions, metrics.per_gpu[gpu].evictions);
    EXPECT_EQ(report.per_gpu[gpu].eviction_policy, "LRU");
    EXPECT_GT(report.per_gpu[gpu].peak_committed_bytes, 0u);
    EXPECT_LE(report.per_gpu[gpu].peak_committed_bytes,
              platform.gpu_memory_bytes);
  }
  // The host bus channel must be reported with a sane occupancy profile.
  ASSERT_FALSE(report.channels.empty());
  const auto host = std::find_if(
      report.channels.begin(), report.channels.end(),
      [](const auto& channel) { return channel.name == "host-bus"; });
  ASSERT_NE(host, report.channels.end());
  EXPECT_GT(host->transfers, 0u);
  EXPECT_GT(host->occupancy, 0.0);
  EXPECT_LE(host->occupancy, 1.0 + 1e-9);
  for (double bucket : host->occupancy_buckets) {
    EXPECT_GE(bucket, 0.0);
    EXPECT_LE(bucket, 1.0 + 1e-9);
  }
  // DMDA pushes prefetches: both fetch classes must be populated.
  EXPECT_GT(report.prefetch.demand_fetches + report.prefetch.prefetch_fetches,
            0u);
  EXPECT_GE(report.prefetch.hit_rate, 0.0);
  EXPECT_LE(report.prefetch.hit_rate, 1.0);
}

TEST(RunReport, JsonIsSchemaValid) {
  const auto graph = work::make_matmul_2d({.n = 6, .data_bytes = 14 * core::kMB});
  const core::Platform platform = core::make_v100_platform(2, 100 * core::kMB);
  core::DartsScheduler scheduler{core::DartsOptions{.use_luf = true}};
  sim::RuntimeEngine engine(graph, platform, scheduler);
  RunReportCollector collector({.context = "unit-test", .occupancy_buckets = 8,
                                .collect_trace = true});
  engine.add_inspector(&collector);
  engine.run();

  const std::string json = sim::run_report_to_json(collector.report());
  const auto parsed = util::json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const auto& root = *parsed;
  ASSERT_TRUE(root.is_object());

  const auto* version = root.find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->as_number(), sim::RunReport::kSchemaVersion);
  ASSERT_NE(root.find("scheduler"), nullptr);
  EXPECT_EQ(root.find("scheduler")->as_string(), scheduler.name());
  EXPECT_EQ(root.find("context")->as_string(), "unit-test");

  const auto* platform_obj = root.find("platform");
  ASSERT_NE(platform_obj, nullptr);
  EXPECT_EQ(platform_obj->find("num_gpus")->as_number(), 2.0);
  EXPECT_FALSE(platform_obj->find("nvlink")->as_bool());

  for (const char* key : {"makespan_us", "total_flops", "achieved_gflops"}) {
    ASSERT_NE(root.find(key), nullptr) << key;
    EXPECT_GT(root.find(key)->as_number(), 0.0) << key;
  }

  const auto* per_gpu = root.find("per_gpu");
  ASSERT_NE(per_gpu, nullptr);
  ASSERT_TRUE(per_gpu->is_array());
  ASSERT_EQ(per_gpu->as_array().size(), 2u);
  for (const auto& gpu : per_gpu->as_array()) {
    for (const char* key :
         {"gpu", "tasks_executed", "busy_us", "loads", "peer_loads",
          "bytes_loaded", "evictions", "peak_committed_bytes"}) {
      ASSERT_NE(gpu.find(key), nullptr) << key;
      EXPECT_TRUE(gpu.find(key)->is_number()) << key;
    }
    EXPECT_EQ(gpu.find("eviction_policy")->as_string(), "DARTS+LUF");
  }

  const auto* balance = root.find("load_balance");
  ASSERT_NE(balance, nullptr);
  EXPECT_GE(balance->find("busy_imbalance")->as_number(), 1.0 - 1e-9);

  const auto* channels = root.find("channels");
  ASSERT_NE(channels, nullptr);
  ASSERT_TRUE(channels->is_array());
  ASSERT_FALSE(channels->as_array().empty());
  for (const auto& channel : channels->as_array()) {
    ASSERT_NE(channel.find("name"), nullptr);
    ASSERT_NE(channel.find("occupancy_buckets"), nullptr);
    EXPECT_EQ(channel.find("occupancy_buckets")->as_array().size(), 8u);
  }

  ASSERT_NE(root.find("prefetch"), nullptr);
  ASSERT_NE(root.find("evictions_by_policy"), nullptr);
  EXPECT_TRUE(root.find("evictions_by_policy")->is_object());
}

TEST(RunReport, FileWithMultipleRunsParses) {
  const auto graph = work::make_matmul_2d({.n = 5, .data_bytes = 14 * core::kMB});
  const core::Platform platform = core::make_v100_platform(1, 100 * core::kMB);
  std::vector<sim::RunReport> reports;
  for (int rep = 0; rep < 2; ++rep) {
    sched::EagerScheduler scheduler;
    sim::RuntimeEngine engine(graph, platform, scheduler);
    RunReportCollector collector;
    engine.add_inspector(&collector);
    engine.run();
    reports.push_back(collector.report());
  }
  const std::string path =
      testing::TempDir() + "/memsched_run_report_test.json";
  ASSERT_TRUE(sim::write_run_reports(reports, "test \"ctx\"", path));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = util::json::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("context")->as_string(), "test \"ctx\"");
  ASSERT_NE(parsed->find("runs"), nullptr);
  EXPECT_EQ(parsed->find("runs")->as_array().size(), 2u);
  std::remove(path.c_str());
}

TEST(RunReport, MirroredTraceExportsToChromeJson) {
  const auto graph = work::make_matmul_2d({.n = 6, .data_bytes = 14 * core::kMB});
  const core::Platform platform = core::make_v100_platform(2, 100 * core::kMB);
  sched::DmdaScheduler scheduler;
  // record_trace stays OFF: the collector's mirror must be sufficient.
  sim::RuntimeEngine engine(graph, platform, scheduler);
  RunReportCollector collector;
  engine.add_inspector(&collector);
  engine.run();
  ASSERT_FALSE(collector.trace().events.empty());

  const std::string path = testing::TempDir() + "/memsched_chrome_test.json";
  ASSERT_TRUE(
      analysis::export_chrome_trace(graph, platform, collector.trace(), path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = util::json::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value()) << "chrome trace is not valid JSON";
  std::remove(path.c_str());
}

TEST(RunReport, CollectorAndCheckerComposeOnOneRun) {
  const auto graph = work::make_cholesky_tasks({.n = 8});
  const core::Platform platform = core::make_v100_platform(2, 150 * core::kMB);
  core::DartsScheduler scheduler{core::DartsOptions{.use_luf = true}};
  sim::RuntimeEngine engine(graph, platform, scheduler);
  InvariantChecker checker(recording_options());
  RunReportCollector collector;
  engine.add_inspector(&checker);
  engine.add_inspector(&collector);
  engine.run();
  EXPECT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_GT(collector.report().makespan_us, 0.0);
  // Both saw the same stream.
  EXPECT_GT(checker.events_checked(), 0u);
}

}  // namespace
}  // namespace mg
