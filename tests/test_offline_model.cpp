#include "analysis/offline_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/task_graph.hpp"

namespace mg::analysis {
namespace {

using core::DataId;
using core::TaskId;

/// The worked example of Figure 1: a 3x3 grid of tasks over 3 column data
/// (D1..D3) and 3 row data (D4..D6), M = 2 data, and the schedule
/// GPU1: T1 T2 T5 T4, GPU2: T3 T6 T9 T8 T7 — 11 loads in total.
struct Figure1 {
  Figure1() {
    core::TaskGraphBuilder builder;
    for (int i = 0; i < 6; ++i) data.push_back(builder.add_data(1));
    // Task T at row r, column c reads column data D[c] and row data D[3+r].
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        tasks.push_back(
            builder.add_task(1.0, {data[static_cast<size_t>(c)],
                                   data[static_cast<size_t>(3 + r)]}));
      }
    }
    graph = builder.build();
  }
  std::vector<DataId> data;
  std::vector<TaskId> tasks;
  core::TaskGraph graph;
};

TEST(OfflineModel, Figure1ExampleCosts11Loads) {
  Figure1 figure;
  auto t = [&figure](int index) { return figure.tasks[static_cast<size_t>(index - 1)]; };
  const Schedule schedule{{t(1), t(2), t(5), t(4)},
                          {t(3), t(6), t(9), t(8), t(7)}};
  const ReplayResult result =
      replay_schedule(figure.graph, schedule, /*memory=*/2,
                      ReplayEviction::kBelady);
  EXPECT_EQ(result.total_loads, 11u);
  EXPECT_EQ(result.per_gpu_loads[0], 5u);
  EXPECT_EQ(result.per_gpu_loads[1], 6u);
  EXPECT_EQ(result.max_tasks_on_any_gpu, 5u);
}

TEST(OfflineModel, LowerBoundsCountUsedData) {
  core::TaskGraphBuilder builder;
  const DataId d0 = builder.add_data(10);
  const DataId d1 = builder.add_data(20);
  (void)builder.add_data(30);  // never consumed
  builder.add_task(1.0, {d0, d1});
  const core::TaskGraph graph = builder.build();
  EXPECT_EQ(loads_lower_bound(graph), 2u);
  EXPECT_EQ(bytes_lower_bound(graph), 30u);
}

TEST(OfflineModel, NoEvictionWhenEverythingFits) {
  Figure1 figure;
  Schedule schedule{{}};
  for (TaskId task : figure.tasks) schedule[0].push_back(task);
  const ReplayResult lru =
      replay_schedule(figure.graph, schedule, 6, ReplayEviction::kLru);
  EXPECT_EQ(lru.total_loads, 6u);  // each data loaded exactly once
}

TEST(OfflineModel, BeladyNeverWorseThanLruOnGrid) {
  Figure1 figure;
  // Row-major on one GPU with M = 3: LRU thrashes the columns.
  Schedule schedule{{}};
  for (TaskId task : figure.tasks) schedule[0].push_back(task);
  const ReplayResult lru =
      replay_schedule(figure.graph, schedule, 3, ReplayEviction::kLru);
  const ReplayResult belady =
      replay_schedule(figure.graph, schedule, 3, ReplayEviction::kBelady);
  EXPECT_LE(belady.total_loads, lru.total_loads);
  EXPECT_GE(belady.total_loads, loads_lower_bound(figure.graph));
}

// ---------------------------------------------------------------------------
// Brute-force optimal eviction (exhaustive victim search with memoization)
// to certify Belady's rule on small instances with unit-size data.
// ---------------------------------------------------------------------------

class BruteForce {
 public:
  BruteForce(const core::TaskGraph& graph,
             const std::vector<TaskId>& order, std::uint32_t memory)
      : graph_(graph), order_(order), memory_(memory) {}

  std::uint32_t solve() { return best(0, 0); }

 private:
  std::uint32_t best(std::size_t pos, std::uint64_t resident_mask) {
    if (pos == order_.size()) return 0;
    const auto key = std::make_pair(pos, resident_mask);
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Load the missing inputs of the task at `pos` one by one, branching
    // over every legal victim choice when the memory is full.
    std::uint32_t result = load_missing(pos, resident_mask, 0);
    memo_[key] = result;
    return result;
  }

  std::uint32_t load_missing(std::size_t pos, std::uint64_t resident_mask,
                             std::size_t input_index) {
    const auto inputs = graph_.inputs(order_[pos]);
    if (input_index == inputs.size()) return best(pos + 1, resident_mask);
    const DataId data = inputs[input_index];
    const std::uint64_t bit = std::uint64_t{1} << data;
    if (resident_mask & bit) {
      return load_missing(pos, resident_mask, input_index + 1);
    }
    // Need a load; maybe first an eviction (branch over all victims).
    std::uint32_t population = 0;
    for (std::uint64_t m = resident_mask; m != 0; m &= m - 1) ++population;
    if (population < memory_) {
      return 1 + load_missing(pos, resident_mask | bit, input_index + 1);
    }
    std::uint32_t best_cost = ~0u;
    for (DataId victim = 0; victim < graph_.num_data(); ++victim) {
      const std::uint64_t victim_bit = std::uint64_t{1} << victim;
      if (!(resident_mask & victim_bit)) continue;
      // Never evict an input of the current task.
      bool is_input = false;
      for (DataId input : inputs) {
        if (input == victim) is_input = true;
      }
      if (is_input) continue;
      const std::uint32_t cost =
          1 + load_missing(pos, (resident_mask & ~victim_bit) | bit,
                           input_index + 1);
      best_cost = std::min(best_cost, cost);
    }
    return best_cost;
  }

  const core::TaskGraph& graph_;
  const std::vector<TaskId>& order_;
  std::uint32_t memory_;
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint32_t> memo_;
};

TEST(OfflineModel, BeladyMatchesBruteForceOnGrid) {
  Figure1 figure;
  std::vector<TaskId> order(figure.tasks);
  const Schedule schedule{order};
  for (std::uint32_t memory = 2; memory <= 4; ++memory) {
    const ReplayResult belady = replay_schedule(figure.graph, schedule,
                                                memory, ReplayEviction::kBelady);
    BruteForce brute(figure.graph, order, memory);
    EXPECT_EQ(belady.total_loads, brute.solve()) << "M=" << memory;
  }
}

TEST(OfflineModel, BeladyMatchesBruteForceOnIrregularInstance) {
  core::TaskGraphBuilder builder;
  std::vector<DataId> data;
  for (int i = 0; i < 7; ++i) data.push_back(builder.add_data(1));
  std::vector<TaskId> order;
  auto add = [&](std::initializer_list<int> ids) {
    std::vector<DataId> inputs;
    for (int id : ids) inputs.push_back(data[static_cast<size_t>(id)]);
    order.push_back(builder.add_task(
        1.0, std::span<const DataId>(inputs.data(), inputs.size())));
  };
  add({0, 1});
  add({2, 3});
  add({0, 4});
  add({1, 2, 5});
  add({3, 6});
  add({0, 6});
  add({4, 5});
  add({1, 3});
  const core::TaskGraph graph = builder.build();

  for (std::uint32_t memory = 3; memory <= 5; ++memory) {
    const ReplayResult belady =
        replay_schedule(graph, {order}, memory, ReplayEviction::kBelady);
    BruteForce brute(graph, order, memory);
    EXPECT_EQ(belady.total_loads, brute.solve()) << "M=" << memory;
  }
}

TEST(Bounds, ReferenceLinesMatchPaperConstants) {
  const core::Platform platform = core::make_v100_platform(2);
  EXPECT_DOUBLE_EQ(gflops_max(platform), 2 * 13253.0);
  EXPECT_EQ(threshold_both_matrices_fit(platform), 1000 * core::kMB);
  EXPECT_EQ(threshold_one_matrix_fits(platform), 2000 * core::kMB);
}

TEST(Bounds, PciLimitScalesWithWork) {
  core::TaskGraphBuilder builder;
  const DataId d = builder.add_data(100);
  builder.add_task(13253.0 * 1e9, {d});  // exactly one second of V100 work
  const core::TaskGraph graph = builder.build();
  const core::Platform platform = core::make_v100_platform(1);
  EXPECT_NEAR(optimal_compute_time_us(graph, platform), 1e6, 1.0);
  EXPECT_NEAR(pci_limit_bytes(graph, platform), 16e9, 1e7);
}

using OfflineModelDeath = Figure1;

TEST(OfflineModelDeath, RejectsIncompleteSchedules) {
  Figure1 figure;
  const Schedule schedule{{figure.tasks[0]}};
  EXPECT_DEATH((void)replay_schedule(figure.graph, schedule, 6,
                                     ReplayEviction::kLru),
               "misses tasks");
}

TEST(OfflineModelDeath, RejectsDuplicatedTasks) {
  Figure1 figure;
  Schedule schedule{{}};
  for (TaskId task : figure.tasks) schedule[0].push_back(task);
  schedule[0].push_back(figure.tasks[0]);
  EXPECT_DEATH((void)replay_schedule(figure.graph, schedule, 6,
                                     ReplayEviction::kLru),
               "twice");
}

}  // namespace
}  // namespace mg::analysis
