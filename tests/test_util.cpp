#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace mg::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::array<int, 10> histogram{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(10)];
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / 10 * 0.9);
    EXPECT_LT(count, kDraws / 10 * 1.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(3);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(42);
  const auto first = rng();
  rng.reseed(42);
  EXPECT_EQ(rng(), first);
}

TEST(Flags, ParsesAllTypes) {
  Flags flags("test");
  flags.define_int("count", 5, "")
      .define_double("ratio", 0.5, "")
      .define_bool("verbose", false, "")
      .define_string("name", "default", "");
  const char* argv[] = {"prog",           "--count=7", "--ratio", "2.25",
                        "--verbose",      "--name=x",  "positional"};
  ASSERT_TRUE(flags.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 2.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("name"), "x");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, DefaultsSurviveNoArgs) {
  Flags flags;
  flags.define_int("n", 10, "").define_bool("on", true, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 10);
  EXPECT_TRUE(flags.get_bool("on"));
}

TEST(Flags, NoPrefixNegatesBool) {
  Flags flags;
  flags.define_bool("steal", true, "");
  const char* argv[] = {"prog", "--no-steal"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.get_bool("steal"));
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags;
  flags.define_int("n", 1, "");
  const char* argv[] = {"prog", "--bogus=3"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Flags, RejectsBadValue) {
  Flags flags;
  flags.define_int("n", 1, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(CsvWriter, WritesHeaderRowsAndComments) {
  const std::string path = testing::TempDir() + "/out.csv";
  {
    CsvWriter csv({"a", "b", "c"}, path);
    csv.comment("hello");
    csv.row({std::int64_t{1}, std::string("x"), 2.5});
    csv.row({std::int64_t{-7}, std::string("y,z"), 0.125});
  }
  std::ifstream input(path);
  std::string line;
  std::getline(input, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(input, line);
  EXPECT_EQ(line, "# hello");
  std::getline(input, line);
  EXPECT_EQ(line, "1,x,2.5");
  std::getline(input, line);
  EXPECT_EQ(line, "-7,y,z,0.125");  // (no quoting: labels must avoid commas)
  std::remove(path.c_str());
}

TEST(CsvWriterDeath, RejectsWrongWidth) {
  CsvWriter csv({"a", "b"}, testing::TempDir() + "/w.csv");
  EXPECT_DEATH(csv.row({std::int64_t{1}}), "width mismatch");
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  MG_INFO("should not appear %d", 1);  // exercise the no-op path
  set_log_level(LogLevel::kTrace);
  MG_TRACE("trace path %s", "ok");     // exercise the emit path
  set_log_level(saved);
  SUCCEED();
}

TEST(FormatDouble, CompactRepresentation) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(13253.0), "13253");
}

}  // namespace
}  // namespace mg::util
