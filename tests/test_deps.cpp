// Dependency-model test battery (ctest label: deps).
//
// Four angles on the DAG machinery:
//   - a brute-force oracle for the RAW/WAR/WAW derivation over random
//     read/write footprints, checked edge-by-edge against the builder;
//   - property tests on randomized layered DAGs: every execution order the
//     engine realizes is topological, across schedulers and platforms;
//   - bit-identity: with an empty edge set the run report JSON string is
//     exactly the independent-task output, dependencies section zeroed;
//   - a memory-bound oracle on tree-shaped graphs: serial release under the
//     optimal post-order never exceeds the classic peak-memory bound
//     (Liu's recursion, the reference point of Marchal/Sinnen/Vivien's
//     tree-scheduling line of work), and the engine replays that order
//     without a single dependency stall.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/darts.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "sched/hfp.hpp"
#include "sim/engine.hpp"
#include "sim/inspector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace mg {
namespace {

using core::DataId;
using core::GpuId;
using core::TaskId;

// ---------------------------------------------------------------------------
// Brute-force oracle for the RAW/WAR/WAW derivation.
// ---------------------------------------------------------------------------

struct OracleEdge {
  TaskId pred;
  TaskId succ;
  std::uint8_t kind;
};

/// Independent re-derivation of the versioned-data edge rules: in submission
/// order, a read binds to the current version (RAW from its writer); a write
/// retires the current version (WAR from its readers, WAW from its writer)
/// and opens the next. Duplicate (pred, succ) pairs OR their kind bits.
std::map<std::pair<TaskId, TaskId>, std::uint8_t> oracle_edges(
    std::uint32_t num_tasks, std::uint32_t num_data,
    const std::vector<std::vector<DataId>>& reads,
    const std::vector<std::vector<DataId>>& writes) {
  std::map<std::pair<TaskId, TaskId>, std::uint8_t> edges;
  std::vector<TaskId> writer(num_data, core::kInvalidTask);
  std::vector<std::vector<TaskId>> readers(num_data);
  for (TaskId task = 0; task < num_tasks; ++task) {
    for (DataId data : reads[task]) {
      if (writer[data] != core::kInvalidTask) {
        edges[{writer[data], task}] |= core::kDepRaw;
      }
      readers[data].push_back(task);
    }
    for (DataId data : writes[task]) {
      for (TaskId reader : readers[data]) {
        if (reader != task) edges[{reader, task}] |= core::kDepWar;
      }
      if (writer[data] != core::kInvalidTask) {
        edges[{writer[data], task}] |= core::kDepWaw;
      }
      writer[data] = task;
      readers[data].clear();
    }
  }
  return edges;
}

TEST(DepsOracle, DerivationMatchesBruteForce) {
  util::Rng rng(0xdef5);
  for (int round = 0; round < 25; ++round) {
    const auto num_tasks = 10 + static_cast<std::uint32_t>(rng.below(30));
    const auto num_data = 4 + static_cast<std::uint32_t>(rng.below(8));

    core::TaskGraphBuilder builder;
    for (DataId data = 0; data < num_data; ++data) builder.add_data(100);

    std::vector<std::vector<DataId>> reads(num_tasks);
    std::vector<std::vector<DataId>> writes(num_tasks);
    for (TaskId task = 0; task < num_tasks; ++task) {
      const auto degree = 1 + static_cast<std::uint32_t>(rng.below(3));
      while (reads[task].size() < degree) {
        const auto data = static_cast<DataId>(rng.below(num_data));
        if (std::find(reads[task].begin(), reads[task].end(), data) ==
            reads[task].end()) {
          reads[task].push_back(data);
        }
      }
      const TaskId id = builder.add_task(1.0, reads[task]);
      ASSERT_EQ(id, task);
      // 0-2 written data items; a write may or may not also be a read.
      const auto num_writes = rng.below(3);
      for (std::uint64_t w = 0; w < num_writes; ++w) {
        const auto data = static_cast<DataId>(rng.below(num_data));
        if (std::find(writes[task].begin(), writes[task].end(), data) ==
            writes[task].end()) {
          builder.set_task_writes(task, data);
          writes[task].push_back(data);
        }
      }
    }
    const core::TaskGraph graph = builder.build();
    const auto expected = oracle_edges(num_tasks, num_data, reads, writes);
    SCOPED_TRACE("round " + std::to_string(round) + ": " +
                 std::to_string(expected.size()) + " oracle edges");

    // Edge-by-edge: the predecessor CSR must be exactly the oracle set.
    std::uint64_t graph_edges = 0;
    for (TaskId task = 0; task < num_tasks; ++task) {
      const auto preds = graph.predecessors(task);
      const auto kinds = graph.predecessor_kinds(task);
      ASSERT_EQ(preds.size(), kinds.size());
      graph_edges += preds.size();
      for (std::size_t i = 0; i < preds.size(); ++i) {
        const auto it = expected.find({preds[i], task});
        ASSERT_NE(it, expected.end())
            << "builder invented edge " << preds[i] << " -> " << task;
        EXPECT_EQ(kinds[i], it->second)
            << "kind mismatch on " << preds[i] << " -> " << task;
        // Derived edges always point forward in submission order.
        EXPECT_LT(preds[i], task);
      }
    }
    EXPECT_EQ(graph_edges, expected.size());
    EXPECT_EQ(graph.dependency_edge_counts().total, expected.size());
    EXPECT_EQ(graph.has_dependencies(), !expected.empty());
  }
}

TEST(DepsOracle, CholeskyAndLuCriticalPaths) {
  // The right-looking factorizations chain POTRF/GETRF(k) -> panel solve ->
  // trailing update -> POTRF/GETRF(k+1): three tasks per step, 3N-2 total.
  for (std::uint32_t n : {2u, 4u, 8u}) {
    const auto chol = work::make_cholesky_tasks({.n = n,
                                                 .with_dependencies = true});
    EXPECT_EQ(chol.critical_path_length(), 3 * n - 2) << "cholesky n=" << n;
    EXPECT_EQ(chol.num_tasks(), work::cholesky_task_count(n));
    const auto lu = work::make_lu_tasks({.n = n, .with_dependencies = true});
    EXPECT_EQ(lu.critical_path_length(), 3 * n - 2) << "lu n=" << n;
    EXPECT_EQ(lu.num_tasks(), work::lu_task_count(n));
  }
  // Dependencies off: same task set, no edges.
  const auto flat = work::make_cholesky_tasks({.n = 8});
  EXPECT_FALSE(flat.has_dependencies());
  EXPECT_EQ(flat.critical_path_length(), 0u);
}

// ---------------------------------------------------------------------------
// Property: realized execution order is topological, across schedulers.
// ---------------------------------------------------------------------------

/// Records per-task start/end times from the inspector stream.
class TimelineRecorder final : public sim::Inspector {
 public:
  void on_run_begin(const core::TaskGraph& graph, const core::Platform&,
                    std::string_view) override {
    start_us.assign(graph.num_tasks(), -1.0);
    end_us.assign(graph.num_tasks(), -1.0);
  }
  void on_event(const sim::InspectorEvent& event) override {
    if (event.kind == sim::InspectorEventKind::kTaskStart) {
      start_us[event.id] = event.time_us;
    } else if (event.kind == sim::InspectorEventKind::kTaskEnd) {
      end_us[event.id] = event.time_us;
    }
  }
  std::vector<double> start_us;
  std::vector<double> end_us;
};

struct SchedulerCase {
  std::string label;
  std::unique_ptr<core::Scheduler> scheduler;
};

std::vector<SchedulerCase> make_schedulers() {
  std::vector<SchedulerCase> cases;
  cases.push_back({"EAGER", std::make_unique<sched::EagerScheduler>()});
  cases.push_back({"DMDAR", std::make_unique<sched::DmdaScheduler>()});
  cases.push_back({"DARTS+LUF", std::make_unique<core::DartsScheduler>(
                                    core::DartsOptions{.use_luf = true})});
  cases.push_back({"HFP", std::make_unique<sched::HfpScheduler>()});
  return cases;
}

class TopologicalOrderTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologicalOrderTest, RandomDagsExecuteTopologically) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const work::LayeredDagParams params{
      .num_layers = 3 + static_cast<std::uint32_t>(rng.below(3)),
      .tasks_per_layer = 6 + static_cast<std::uint32_t>(rng.below(10)),
      .num_data = 10 + static_cast<std::uint32_t>(rng.below(10)),
      .min_inputs = 1,
      .max_inputs = 3,
      .max_preds = 1 + static_cast<std::uint32_t>(rng.below(3)),
      .with_writes = (seed % 2 == 0),
      .data_bytes = 50,
      .task_flops = 1e6,
      .seed = seed};
  const core::TaskGraph graph = work::make_layered_dag(params);
  ASSERT_TRUE(graph.has_dependencies());
  EXPECT_GE(graph.critical_path_length(), params.num_layers);

  core::Platform platform;
  platform.num_gpus = 1 + static_cast<std::uint32_t>(rng.below(3));
  platform.gpu_memory_bytes = 50 * params.num_data;  // roomy

  for (SchedulerCase& entry : make_schedulers()) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " scheduler " + entry.label);
    sim::RuntimeEngine engine(graph, platform, *entry.scheduler,
                              {.seed = seed});
    TimelineRecorder timeline;
    sim::InvariantChecker checker({.fail_fast = false});
    engine.add_inspector(&timeline);
    engine.add_inspector(&checker);
    const core::RunMetrics metrics = engine.run();
    ASSERT_TRUE(checker.ok())
        << checker.report().error << "\nlast events:\n"
        << checker.report().excerpt;

    std::uint64_t executed = 0;
    for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
    EXPECT_EQ(executed, graph.num_tasks());

    // Every edge respected: a successor starts only after its predecessor
    // finished (retirement is instantaneous at finish on fault-free runs).
    for (TaskId task = 0; task < graph.num_tasks(); ++task) {
      ASSERT_GE(timeline.start_us[task], 0.0) << "task " << task;
      for (TaskId pred : graph.predecessors(task)) {
        EXPECT_GE(timeline.start_us[task], timeline.end_us[pred])
            << "edge " << pred << " -> " << task << " violated";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologicalOrderTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Bit-identity: an empty edge set leaves the report byte-for-byte the
// independent-task output.
// ---------------------------------------------------------------------------

TEST(DepsBitIdentity, EdgeFreeRunsSerializeIdentically) {
  // The same Cholesky task set built through the dependency-capable
  // generator with the flag off must be indistinguishable — in the full
  // JSON report, not just the headline metrics — from the default build,
  // and re-running must reproduce the document exactly.
  const core::Platform platform = core::make_v100_platform(2, 120 * core::kMB);
  auto report_for = [&](const core::TaskGraph& graph,
                        core::Scheduler& scheduler) {
    sim::RuntimeEngine engine(graph, platform, scheduler, {.seed = 42});
    sim::RunReportCollector collector;
    engine.add_inspector(&collector);
    engine.run();
    return sim::run_report_to_json(collector.report());
  };

  const core::TaskGraph plain = work::make_cholesky_tasks({.n = 8});
  const core::TaskGraph flagged_off =
      work::make_cholesky_tasks({.n = 8, .with_dependencies = false});
  ASSERT_FALSE(flagged_off.has_dependencies());

  for (SchedulerCase& entry : make_schedulers()) {
    SCOPED_TRACE(entry.label);
    const std::string baseline = report_for(plain, *entry.scheduler);
    EXPECT_EQ(report_for(flagged_off, *entry.scheduler), baseline);
    EXPECT_EQ(report_for(plain, *entry.scheduler), baseline);
    // The dependencies section stays zeroed on edge-free graphs.
    EXPECT_NE(baseline.find("\"dependencies\":{\"enabled\":false"),
              std::string::npos);
  }
}

TEST(DepsBitIdentity, DagRunsAreDeterministic) {
  const core::TaskGraph graph =
      work::make_cholesky_tasks({.n = 8, .with_dependencies = true});
  const core::Platform platform = core::make_v100_platform(2, 120 * core::kMB);
  for (SchedulerCase& entry : make_schedulers()) {
    SCOPED_TRACE(entry.label);
    auto run_once = [&] {
      sim::RuntimeEngine engine(graph, platform, *entry.scheduler,
                                {.seed = 7});
      sim::RunReportCollector collector;
      engine.add_inspector(&collector);
      engine.run();
      return sim::run_report_to_json(collector.report());
    };
    const std::string first = run_once();
    EXPECT_EQ(run_once(), first);
    EXPECT_NE(first.find("\"dependencies\":{\"enabled\":true"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Memory-bound oracle: tree-shaped graphs under serial release.
// ---------------------------------------------------------------------------

struct TreeNode {
  std::vector<TaskId> children;
  std::uint64_t bytes = 0;  ///< size of the node's output data
};

/// Peak memory of the optimal post-order traversal (Liu's recursion): with
/// children visited in decreasing (peak - residual), the subtree peak is
///   max( max_i (sum_{j<i} s_j + P_i),  sum_i s_i + s_v ).
std::uint64_t post_order_peak(const std::vector<TreeNode>& tree, TaskId v,
                              std::vector<TaskId>& order) {
  std::vector<std::pair<std::uint64_t, TaskId>> ranked;  // (peak, child)
  ranked.reserve(tree[v].children.size());
  for (TaskId child : tree[v].children) {
    std::vector<TaskId> child_order;
    ranked.emplace_back(post_order_peak(tree, child, child_order), child);
  }
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto& a, const auto& b) {
              const std::int64_t lhs =
                  static_cast<std::int64_t>(a.first) -
                  static_cast<std::int64_t>(tree[a.second].bytes);
              const std::int64_t rhs =
                  static_cast<std::int64_t>(b.first) -
                  static_cast<std::int64_t>(tree[b.second].bytes);
              return lhs > rhs;
            });
  std::uint64_t peak = 0;
  std::uint64_t resident = 0;  // finished children outputs still live
  for (const auto& [child_peak, child] : ranked) {
    std::vector<TaskId> child_order;
    post_order_peak(tree, child, child_order);
    order.insert(order.end(), child_order.begin(), child_order.end());
    peak = std::max(peak, resident + child_peak);
    resident += tree[child].bytes;
  }
  peak = std::max(peak, resident + tree[v].bytes);
  order.push_back(v);
  return peak;
}

/// Replays `order` serially: a data item is live from the start of its
/// first toucher (reader or writer) to the finish of its last; returns the
/// peak live bytes.
std::uint64_t replay_peak(const core::TaskGraph& graph,
                          const std::vector<TaskId>& order) {
  std::vector<std::vector<DataId>> touched(graph.num_tasks());
  std::vector<TaskId> last_toucher(graph.num_data(), core::kInvalidTask);
  std::vector<std::uint32_t> position(graph.num_tasks(), 0);
  for (std::uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    for (DataId data : graph.inputs(task)) touched[task].push_back(data);
    for (DataId data : graph.writes(task)) {
      if (std::find(touched[task].begin(), touched[task].end(), data) ==
          touched[task].end()) {
        touched[task].push_back(data);
      }
    }
  }
  for (const TaskId task : order) {
    for (DataId data : touched[task]) {
      if (last_toucher[data] == core::kInvalidTask ||
          position[last_toucher[data]] < position[task]) {
        last_toucher[data] = task;
      }
    }
  }
  std::uint64_t live = 0;
  std::uint64_t peak = 0;
  std::vector<bool> resident(graph.num_data(), false);
  for (const TaskId task : order) {
    for (DataId data : touched[task]) {
      if (!resident[data]) {
        resident[data] = true;
        live += graph.data_size(data);
      }
    }
    peak = std::max(peak, live);
    for (DataId data : touched[task]) {
      if (last_toucher[data] == task) {
        resident[data] = false;
        live -= graph.data_size(data);
      }
    }
  }
  return peak;
}

class TreePeakMemoryTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TreePeakMemoryTest, SerialReleaseStaysUnderPostOrderBound) {
  // Random in-tree, root last: parent(i) > i, so the submission order
  // 0..N-1 writes each child's output before its parent reads it and the
  // RAW derivation yields exactly the tree edges.
  util::Rng rng(GetParam());
  const auto num_tasks = 12 + static_cast<std::uint32_t>(rng.below(28));
  std::vector<TreeNode> tree(num_tasks);
  std::vector<TaskId> parent(num_tasks, core::kInvalidTask);
  for (TaskId task = 0; task + 1 < num_tasks; ++task) {
    parent[task] = task + 1 +
                   static_cast<TaskId>(rng.below(num_tasks - task - 1));
    tree[parent[task]].children.push_back(task);
  }

  core::TaskGraphBuilder builder;
  std::vector<DataId> output(num_tasks);
  for (TaskId task = 0; task < num_tasks; ++task) {
    tree[task].bytes = 1 + rng.below(50);
    output[task] = builder.add_data(tree[task].bytes);
  }
  for (TaskId task = 0; task < num_tasks; ++task) {
    std::vector<DataId> inputs;
    if (tree[task].children.empty()) {
      inputs.push_back(output[task]);  // leaves read their own (version-0) data
    } else {
      for (TaskId child : tree[task].children) {
        inputs.push_back(output[child]);
      }
    }
    const TaskId id = builder.add_task(10.0, inputs);
    ASSERT_EQ(id, task);
    builder.set_task_writes(task, output[task]);
  }
  const core::TaskGraph graph = builder.build();

  // The derived DAG is exactly the tree: child -> parent, nothing else.
  for (TaskId task = 0; task < num_tasks; ++task) {
    const auto succs = graph.successors(task);
    if (parent[task] == core::kInvalidTask) {
      EXPECT_TRUE(succs.empty());
    } else {
      ASSERT_EQ(succs.size(), 1u);
      EXPECT_EQ(succs[0], parent[task]);
    }
  }

  // Oracle: the linear replay of the optimal post-order never exceeds
  // Liu's recursive bound.
  const TaskId root = num_tasks - 1;
  std::vector<TaskId> order;
  const std::uint64_t bound = post_order_peak(tree, root, order);
  ASSERT_EQ(order.size(), num_tasks);
  EXPECT_LE(replay_peak(graph, order), bound) << "seed " << GetParam();

  // The engine replays the same order serially without a dependency stall:
  // the post-order is topological, so the fixed-order head gate never
  // blocks and every task runs in exactly the prescribed sequence.
  sched::FixedOrderScheduler scheduler({order});
  core::Platform platform;
  platform.num_gpus = 1;
  platform.gpu_memory_bytes = graph.working_set_bytes();
  sim::EngineConfig config;
  config.seed = GetParam();
  config.pipeline_depth = 1;
  sim::RuntimeEngine engine(graph, platform, scheduler, config);
  TimelineRecorder timeline;
  sim::InvariantChecker checker({.fail_fast = false});
  engine.add_inspector(&timeline);
  engine.add_inspector(&checker);
  const core::RunMetrics metrics = engine.run();
  ASSERT_TRUE(checker.ok()) << checker.report().error;
  EXPECT_EQ(metrics.per_gpu[0].tasks_executed, graph.num_tasks());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(timeline.start_us[order[i]], timeline.end_us[order[i - 1]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePeakMemoryTest,
                         testing::Values(11, 23, 42, 77, 131, 999));

// ---------------------------------------------------------------------------
// Run-report dependencies section on a real DAG run.
// ---------------------------------------------------------------------------

TEST(DepsReport, SchemaSixSectionMatchesGraphShape) {
  const core::TaskGraph graph =
      work::make_cholesky_tasks({.n = 6, .with_dependencies = true});
  const core::Platform platform = core::make_v100_platform(2, 120 * core::kMB);
  sched::EagerScheduler scheduler;
  sim::RuntimeEngine engine(graph, platform, scheduler, {.seed = 3});
  sim::RunReportCollector collector;
  engine.add_inspector(&collector);
  engine.run();

  const sim::RunReport& report = collector.report();
  const auto& counts = graph.dependency_edge_counts();
  EXPECT_TRUE(report.dependencies.enabled);
  EXPECT_EQ(report.dependencies.total_edges, counts.total);
  EXPECT_EQ(report.dependencies.explicit_edges, counts.explicit_edges);
  EXPECT_EQ(report.dependencies.raw_edges, counts.raw);
  EXPECT_EQ(report.dependencies.war_edges, counts.war);
  EXPECT_EQ(report.dependencies.waw_edges, counts.waw);
  EXPECT_EQ(report.dependencies.critical_path_length,
            graph.critical_path_length());
  // Fault-free: every edge released exactly once and every task enabled
  // exactly once (roots in the initial-frontier events at load), nothing
  // un-retired.
  EXPECT_EQ(report.dependencies.edges_released, counts.total);
  EXPECT_EQ(report.dependencies.tasks_enabled, graph.num_tasks());
  EXPECT_EQ(report.dependencies.tasks_unretired, 0u);
  EXPECT_GE(report.dependencies.max_ready_width, 1u);
}

}  // namespace
}  // namespace mg
