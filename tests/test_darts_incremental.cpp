// Incremental DARTS (the paper's "improve the computational complexity of
// DARTS" future work): n(D) maintained under load/evict/plan events instead
// of rescanned. These tests check counter consistency against brute-force
// recomputation and end-to-end behaviour against the scan variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "analysis/validate.hpp"
#include "core/darts.hpp"
#include "core/task_graph.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace mg::core {
namespace {

core::Platform one_gpu() {
  core::Platform platform;
  platform.num_gpus = 1;
  platform.gpu_memory_bytes = 1000;
  return platform;
}

/// MemoryView mirroring an explicit resident set (what the incremental
/// variant tracks through notifications).
class MirrorMemory final : public MemoryView {
 public:
  explicit MirrorMemory(std::uint32_t num_data) : present_(num_data, false) {}
  [[nodiscard]] bool is_present(DataId data) const override {
    return present_[data];
  }
  [[nodiscard]] bool is_present_or_fetching(DataId data) const override {
    return present_[data];
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override { return 1000; }
  [[nodiscard]] std::uint64_t used_bytes() const override { return 0; }
  std::vector<bool> present_;
};

TEST(DartsIncremental, RejectsIncompatibleVariantCombos) {
  DartsScheduler bad{DartsOptions{.use_luf = true, .three_inputs = true,
                                  .incremental = true}};
  const TaskGraph graph = work::make_matmul_2d({.n = 2, .data_bytes = 10});
  EXPECT_DEATH(bad.prepare(graph, one_gpu(), 1), "does not compose");
}

TEST(DartsIncremental, NameCarriesTheVariantTag) {
  EXPECT_EQ(darts_variant_name({.use_luf = true, .incremental = true}),
            "DARTS+LUF+incr");
}

TEST(DartsIncremental, MatchesScanDecisionsWithoutPrefetchEffects) {
  // Drive both variants through an identical notification sequence (loads
  // announced immediately, like a pipeline-depth-1 run) and check they make
  // the same planning decisions.
  const TaskGraph graph = work::make_matmul_2d({.n = 5, .data_bytes = 10});
  DartsScheduler scan{DartsOptions{.use_luf = true}};
  DartsScheduler incremental{
      DartsOptions{.use_luf = true, .incremental = true}};
  scan.prepare(graph, one_gpu(), 9);
  incremental.prepare(graph, one_gpu(), 9);

  MirrorMemory memory(graph.num_data());
  for (int step = 0; step < 25; ++step) {
    const TaskId a = scan.pop_task(0, memory);
    const TaskId b = incremental.pop_task(0, memory);
    ASSERT_EQ(a, b) << "step " << step;
    if (a == kInvalidTask) break;
    // Announce the inputs as loaded to both (and to the mirror view).
    for (DataId data : graph.inputs(a)) {
      if (!memory.present_[data]) {
        memory.present_[data] = true;
        scan.notify_data_loaded(0, data);
        incremental.notify_data_loaded(0, data);
      }
    }
    scan.notify_task_complete(0, a);
    incremental.notify_task_complete(0, b);
  }
}

TEST(DartsIncremental, CountersSurviveEvictionChurn) {
  // Random load/evict churn; afterwards the scheduler must still issue every
  // task exactly once (the MG_CHECK on counter desync guards the rest).
  const TaskGraph graph = work::make_random_bipartite(
      {.num_tasks = 80, .num_data = 16, .min_inputs = 1, .max_inputs = 3,
       .data_bytes = 10, .seed = 21});
  DartsScheduler darts{DartsOptions{.use_luf = true, .incremental = true}};
  core::Platform platform = one_gpu();
  darts.prepare(graph, platform, 3);

  MirrorMemory memory(graph.num_data());
  util::Rng rng(7);
  std::vector<int> executed(graph.num_tasks(), 0);
  std::uint32_t done = 0;
  while (done < graph.num_tasks()) {
    const TaskId task = darts.pop_task(0, memory);
    ASSERT_NE(task, kInvalidTask);
    for (DataId data : graph.inputs(task)) {
      if (!memory.present_[data]) {
        memory.present_[data] = true;
        darts.notify_data_loaded(0, data);
      }
    }
    // Random eviction of an unrelated resident data between tasks.
    if (rng.chance(0.6)) {
      const auto inputs = graph.inputs(task);
      std::vector<DataId> evictable;
      for (DataId data = 0; data < graph.num_data(); ++data) {
        if (memory.present_[data] &&
            std::find(inputs.begin(), inputs.end(), data) == inputs.end()) {
          evictable.push_back(data);
        }
      }
      if (!evictable.empty()) {
        const DataId victim = evictable[rng.pick_index(evictable)];
        memory.present_[victim] = false;
        darts.on_evict(0, victim);
        darts.notify_data_evicted(0, victim);
      }
    }
    darts.notify_task_complete(0, task);
    ++executed[task];
    ++done;
  }
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    EXPECT_EQ(executed[task], 1);
  }
}

TEST(DartsIncremental, FreeCountMatchesFromScratchRecount) {
  // Audit of incremental_availability_change: after every pop / load /
  // evict / complete event, n(D) on every GPU must equal a from-scratch
  // recount over the available pool (available = neither popped nor
  // reserved in any plannedTasks; D counts for task t when D is t's sole
  // absent input on that GPU).
  const TaskGraph graph = work::make_random_bipartite(
      {.num_tasks = 60, .num_data = 14, .min_inputs = 1, .max_inputs = 3,
       .data_bytes = 10, .seed = 33});
  DartsScheduler darts{DartsOptions{.use_luf = true, .incremental = true}};
  core::Platform platform;
  platform.num_gpus = 2;
  platform.gpu_memory_bytes = 1000;
  darts.prepare(graph, platform, 5);

  std::vector<MirrorMemory> memory(2, MirrorMemory(graph.num_data()));
  std::vector<std::vector<TaskId>> uncompleted(2);
  std::vector<std::uint8_t> popped(graph.num_tasks(), 0);
  util::Rng rng(17);

  auto is_available = [&](TaskId task) {
    if (popped[task] != 0) return false;
    for (GpuId gpu = 0; gpu < 2; ++gpu) {
      const auto& planned = darts.planned_tasks(gpu);
      if (std::find(planned.begin(), planned.end(), task) != planned.end()) {
        return false;
      }
    }
    return true;
  };

  auto audit = [&](const char* when, int step) {
    for (GpuId gpu = 0; gpu < 2; ++gpu) {
      std::vector<std::uint32_t> expected(graph.num_data(), 0);
      for (TaskId task = 0; task < graph.num_tasks(); ++task) {
        if (!is_available(task)) continue;
        DataId sole = kInvalidData;
        std::uint32_t absent = 0;
        for (DataId data : graph.inputs(task)) {
          if (!memory[gpu].present_[data]) {
            ++absent;
            sole = data;
          }
        }
        if (absent == 1) ++expected[sole];
      }
      for (DataId data = 0; data < graph.num_data(); ++data) {
        EXPECT_EQ(darts.incremental_in_mem(gpu, data),
                  static_cast<bool>(memory[gpu].present_[data]))
            << "in_mem mirror diverged after " << when << " at step " << step
            << " (gpu " << gpu << ", d" << data << ")";
        EXPECT_EQ(darts.incremental_free_count(gpu, data), expected[data])
            << "n(D) diverged after " << when << " at step " << step
            << " (gpu " << gpu << ", d" << data << ")";
      }
    }
  };

  audit("prepare", 0);
  std::uint32_t done = 0;
  int step = 0;
  while (done < graph.num_tasks()) {
    ASSERT_FALSE(testing::Test::HasFailure()) << "stopping at first divergence";
    ++step;
    const GpuId gpu = static_cast<GpuId>(rng.below(2));
    const TaskId task = darts.pop_task(gpu, memory[gpu]);
    if (task == kInvalidTask) {
      // Everything left is popped-but-uncompleted: drain one.
      bool drained = false;
      for (GpuId g = 0; g < 2 && !drained; ++g) {
        if (!uncompleted[g].empty()) {
          const TaskId finished = uncompleted[g].front();
          uncompleted[g].erase(uncompleted[g].begin());
          darts.notify_task_complete(g, finished);
          ++done;
          drained = true;
          audit("drain", step);
        }
      }
      ASSERT_TRUE(drained) << "scheduler starved with tasks remaining";
      continue;
    }
    popped[task] = 1;
    uncompleted[gpu].push_back(task);
    audit("pop", step);

    for (DataId data : graph.inputs(task)) {
      if (!memory[gpu].present_[data]) {
        memory[gpu].present_[data] = true;
        darts.on_load(gpu, data);
        darts.notify_data_loaded(gpu, data);
        audit("load", step);
      }
    }

    // Random eviction of resident data no uncompleted task still reads
    // (mirrors the engine, which cannot evict pinned inputs).
    if (rng.chance(0.5)) {
      std::vector<DataId> evictable;
      for (DataId data = 0; data < graph.num_data(); ++data) {
        if (!memory[gpu].present_[data]) continue;
        bool in_use = false;
        for (TaskId pending : uncompleted[gpu]) {
          const auto inputs = graph.inputs(pending);
          if (std::find(inputs.begin(), inputs.end(), data) != inputs.end()) {
            in_use = true;
            break;
          }
        }
        if (!in_use) evictable.push_back(data);
      }
      if (!evictable.empty()) {
        const DataId victim = evictable[rng.pick_index(evictable)];
        darts.on_evict(gpu, victim);
        memory[gpu].present_[victim] = false;
        darts.notify_data_evicted(gpu, victim);
        audit("evict", step);
      }
    }

    // Completions lag pops so several tasks sit in the buffer at once.
    while (uncompleted[gpu].size() > 2 ||
           (!uncompleted[gpu].empty() && rng.chance(0.4))) {
      const TaskId finished = uncompleted[gpu].front();
      uncompleted[gpu].erase(uncompleted[gpu].begin());
      darts.notify_task_complete(gpu, finished);
      ++done;
      audit("complete", step);
    }
  }
}

class IncrementalEndToEnd : public testing::TestWithParam<int> {};

TEST_P(IncrementalEndToEnd, RunsCompleteAndStayClose) {
  core::TaskGraph graph = [&]() -> core::TaskGraph {
    switch (GetParam()) {
      case 0:
        return work::make_matmul_2d({.n = 12, .data_bytes = 14 * kMB});
      case 1:
        return work::make_cholesky_tasks({.n = 10});
      default:
        return work::make_sparse_matmul(
            {.n = 40, .keep_fraction = 0.05, .seed = 4});
    }
  }();
  const core::Platform platform = make_v100_platform(2, 150 * kMB);

  auto run = [&](bool incremental) {
    DartsScheduler darts{
        DartsOptions{.use_luf = true, .incremental = incremental}};
    sim::EngineConfig config;
    config.record_trace = true;
    config.seed = 11;
    sim::RuntimeEngine engine(graph, platform, darts, config);
    const RunMetrics metrics = engine.run();
    const auto validation =
        analysis::validate_trace(graph, platform, engine.trace());
    EXPECT_TRUE(validation.ok) << validation.error;
    std::uint64_t executed = 0;
    for (const auto& gpu : metrics.per_gpu) executed += gpu.tasks_executed;
    EXPECT_EQ(executed, graph.num_tasks());
    return metrics.total_bytes_loaded();
  };

  const auto scan_bytes = run(false);
  const auto incremental_bytes = run(true);
  // Decisions differ (loaded-vs-fetching semantics) but the schedule quality
  // must stay in the same league.
  EXPECT_LT(static_cast<double>(incremental_bytes),
            1.6 * static_cast<double>(scan_bytes));
}

INSTANTIATE_TEST_SUITE_P(Workloads, IncrementalEndToEnd,
                         testing::Values(0, 1, 2));

TEST(DartsIncremental, DecisionCostBeatsScanOnWideGraphs) {
  // The point of the variant: planning cost per round is O(|data|), not
  // O(total consumer degree). Compare accumulated pop wall time.
  const TaskGraph graph = work::make_matmul_2d({.n = 48});
  const core::Platform platform = make_v100_platform(1);

  auto pop_cost = [&](bool incremental) {
    DartsScheduler darts{
        DartsOptions{.use_luf = true, .incremental = incremental}};
    sim::RuntimeEngine engine(graph, platform, darts, {.seed = 2});
    return engine.run().scheduler_pop_us;
  };

  const double scan_us = pop_cost(false);
  const double incremental_us = pop_cost(true);
  // Generous factor: wall-clock comparisons on shared machines are noisy,
  // but a ~48x degree reduction should comfortably halve the cost.
  EXPECT_LT(incremental_us, 0.7 * scan_us)
      << "scan " << scan_us << "us vs incremental " << incremental_us << "us";
}

}  // namespace
}  // namespace mg::core
