#include "core/darts.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/task_graph.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::core {
namespace {

core::Platform one_gpu_platform() {
  core::Platform platform;
  platform.num_gpus = 1;
  platform.gpu_memory_bytes = 1000;
  return platform;
}

/// MemoryView stub with an explicit resident set.
class StubMemory final : public MemoryView {
 public:
  explicit StubMemory(std::set<DataId> present = {})
      : present_(std::move(present)) {}
  [[nodiscard]] bool is_present(DataId data) const override {
    return present_.contains(data);
  }
  [[nodiscard]] bool is_present_or_fetching(DataId data) const override {
    return present_.contains(data);
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override { return 1000; }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return 10 * present_.size();
  }

 private:
  std::set<DataId> present_;
};

TEST(DartsName, ComposesVariantNames) {
  EXPECT_EQ(darts_variant_name({.use_luf = false}), "DARTS");
  EXPECT_EQ(darts_variant_name({}), "DARTS+LUF");
  EXPECT_EQ(darts_variant_name({.use_luf = true, .three_inputs = true}),
            "DARTS+LUF-3inputs");
  EXPECT_EQ(darts_variant_name({.use_luf = true, .three_inputs = true,
                                .opti = true}),
            "DARTS+LUF+OPTI-3inputs");
  EXPECT_EQ(darts_variant_name({.use_luf = true, .scan_threshold = 10}),
            "DARTS+LUF+threshold");
}

TEST(Darts, PlansFreeTasksEnabledByOneLoad) {
  // 2x2 blocked matmul; rowA_0 (data 0) resident: loading either column
  // frees exactly one task of row 0.
  const TaskGraph graph = work::make_matmul_2d({.n = 2, .data_bytes = 10});
  DartsScheduler darts;
  darts.prepare(graph, one_gpu_platform(), 1);
  StubMemory memory({0});  // rowA_0

  const TaskId task = darts.pop_task(0, memory);
  // Tasks are row-major: T00=0, T01=1 are the row-0 tasks.
  EXPECT_TRUE(task == 0 || task == 1);
}

TEST(Darts, TieBreakPrefersDataWithMoreConsumers) {
  // d_present resident. d_a frees t0 and has 3 consumers total; d_b frees t1
  // with only 2 consumers: DARTS must pick d_a.
  TaskGraphBuilder builder;
  const DataId d_present = builder.add_data(10);
  const DataId d_a = builder.add_data(10);
  const DataId d_b = builder.add_data(10);
  const DataId d_x = builder.add_data(10);
  const TaskId t0 = builder.add_task(1.0, {d_present, d_a});
  builder.add_task(1.0, {d_present, d_b});
  builder.add_task(1.0, {d_a, d_x});       // extra consumers of d_a
  builder.add_task(1.0, {d_a, d_x});
  builder.add_task(1.0, {d_b, d_x});
  const TaskGraph graph = builder.build();

  DartsScheduler darts;
  darts.prepare(graph, one_gpu_platform(), 7);
  StubMemory memory({d_present});
  EXPECT_EQ(darts.pop_task(0, memory), t0);
}

TEST(Darts, RandomTaskWhenNothingIsFree) {
  const TaskGraph graph = work::make_matmul_2d({.n = 3, .data_bytes = 10});
  DartsScheduler darts(DartsOptions{.use_luf = false});
  darts.prepare(graph, one_gpu_platform(), 3);
  StubMemory memory;  // empty: every task needs 2 loads
  const TaskId task = darts.pop_task(0, memory);
  EXPECT_NE(task, kInvalidTask);
  // The random path buffers the task directly without planning anything.
  EXPECT_TRUE(darts.planned_tasks(0).empty());
}

TEST(Darts, PlannedTasksAreServedBeforeNewPlanning) {
  TaskGraphBuilder builder;
  const DataId d_present = builder.add_data(10);
  const DataId d_new = builder.add_data(10);
  const TaskId t0 = builder.add_task(1.0, {d_present, d_new});
  const TaskId t1 = builder.add_task(1.0, {d_present, d_new});
  const TaskId t2 = builder.add_task(1.0, {d_present, d_new});
  const TaskGraph graph = builder.build();

  DartsScheduler darts;
  darts.prepare(graph, one_gpu_platform(), 1);
  StubMemory memory({d_present});
  const TaskId first = darts.pop_task(0, memory);
  EXPECT_EQ(first, t0);
  EXPECT_EQ(darts.planned_tasks(0).size(), 2u);
  EXPECT_EQ(darts.pop_task(0, memory), t1);
  EXPECT_EQ(darts.pop_task(0, memory), t2);
  EXPECT_EQ(darts.pop_task(0, memory), kInvalidTask);
  (void)first;
}

TEST(Darts, ThresholdSkipsDataOutsideTheWindow) {
  // Data id 0 frees nothing; data id 1 frees two tasks. A threshold of 1
  // only scans data 0, so nothing is planned; unlimited scan plans both
  // enabled tasks.
  TaskGraphBuilder builder;
  const DataId d_useless = builder.add_data(10);
  const DataId d_enabler = builder.add_data(10);
  const DataId d_present = builder.add_data(10);
  const DataId d_far = builder.add_data(10);
  builder.add_task(1.0, {d_useless, d_far});
  const TaskId t_a = builder.add_task(1.0, {d_present, d_enabler});
  builder.add_task(1.0, {d_present, d_enabler});
  const TaskGraph graph = builder.build();
  (void)t_a;

  StubMemory memory({d_present});

  DartsScheduler unlimited{DartsOptions{.use_luf = false}};
  unlimited.prepare(graph, one_gpu_platform(), 5);
  (void)unlimited.pop_task(0, memory);
  EXPECT_EQ(unlimited.planned_tasks(0).size(), 1u);  // planned 2, popped 1

  DartsScheduler limited{DartsOptions{.use_luf = false, .scan_threshold = 1}};
  limited.prepare(graph, one_gpu_platform(), 5);
  (void)limited.pop_task(0, memory);
  EXPECT_TRUE(limited.planned_tasks(0).empty());  // fell back to random
}

TEST(Darts, ThreeInputsVariantFindsTwoLoadTask) {
  // Empty memory. d_hub is shared by three 2-input tasks: each is one load
  // away once d_hub is chosen, so the 3inputs scan must return one of them
  // instead of a uniformly random task.
  TaskGraphBuilder builder;
  const DataId d_hub = builder.add_data(10);
  std::vector<TaskId> hub_tasks;
  for (int i = 0; i < 3; ++i) {
    const DataId other = builder.add_data(10);
    hub_tasks.push_back(builder.add_task(1.0, {d_hub, other}));
  }
  // Decoys with 3 inputs (two loads away even with d_hub).
  const DataId e0 = builder.add_data(10);
  const DataId e1 = builder.add_data(10);
  const DataId e2 = builder.add_data(10);
  for (int i = 0; i < 5; ++i) builder.add_task(1.0, {e0, e1, e2});
  const TaskGraph graph = builder.build();

  DartsScheduler darts{DartsOptions{.use_luf = true, .three_inputs = true}};
  darts.prepare(graph, one_gpu_platform(), 11);
  StubMemory memory;
  const TaskId task = darts.pop_task(0, memory);
  EXPECT_TRUE(std::find(hub_tasks.begin(), hub_tasks.end(), task) !=
              hub_tasks.end());
}

TEST(Darts, OptiStopsAtFirstEnablingData) {
  const TaskGraph graph = work::make_matmul_2d({.n = 3, .data_bytes = 10});
  DartsScheduler darts{DartsOptions{.use_luf = true, .opti = true}};
  darts.prepare(graph, one_gpu_platform(), 2);
  StubMemory memory({0});  // rowA_0 resident
  const TaskId task = darts.pop_task(0, memory);
  // Must be a row-0 task (the only free tasks); OPTI picks the first
  // enabling data in scan order, which is colB_0 (data id 3) -> task 0.
  EXPECT_EQ(task, 0u);
}

TEST(Darts, EvictedDataRejoinsScanListAtTheTail) {
  // OPTI picks the first enabling data in scan order; after an eviction the
  // data re-enters at the tail, so a later-id data that never left now
  // precedes it.
  TaskGraphBuilder builder;
  const DataId d_present = builder.add_data(10);
  const DataId d_first = builder.add_data(10);   // earlier in initial order
  const DataId d_second = builder.add_data(10);
  const TaskId t_first_a = builder.add_task(1.0, {d_present, d_first});
  builder.add_task(1.0, {d_present, d_first});
  const TaskId t_second = builder.add_task(1.0, {d_present, d_second});
  const TaskGraph graph = builder.build();

  DartsScheduler darts{DartsOptions{.use_luf = true, .opti = true}};
  darts.prepare(graph, one_gpu_platform(), 3);
  StubMemory memory({d_present});

  // First pop: d_first enables two tasks and comes first -> t_first_a.
  EXPECT_EQ(darts.pop_task(0, memory), t_first_a);
  // Simulate the load then an eviction of d_first: it goes to the tail.
  darts.notify_data_loaded(0, d_first);
  darts.on_evict(0, d_first);
  darts.notify_data_evicted(0, d_first);
  // Now d_second precedes d_first in the scan: OPTI returns its task.
  EXPECT_EQ(darts.pop_task(0, memory), t_second);
}

// --- LUF eviction ---------------------------------------------------------

struct LufFixture {
  LufFixture() {
    TaskGraphBuilder builder;
    d_present = builder.add_data(10);
    d_new = builder.add_data(10);
    d_idle = builder.add_data(10);
    t0 = builder.add_task(1.0, {d_present, d_new});
    t1 = builder.add_task(1.0, {d_present, d_new});
    graph = builder.build();
    darts.prepare(graph, one_gpu_platform(), 1);
    // One pop: t0 buffered, t1 planned.
    StubMemory memory({d_present});
    popped = darts.pop_task(0, memory);
  }

  TaskGraph graph;
  DataId d_present{}, d_new{}, d_idle{};
  TaskId t0{}, t1{};
  DartsScheduler darts;
  TaskId popped{};
};

TEST(DartsLuf, EvictsDataUnusedByBufferAndPlans) {
  LufFixture fixture;
  ASSERT_EQ(fixture.popped, fixture.t0);
  const std::vector<DataId> candidates{fixture.d_present, fixture.d_new,
                                       fixture.d_idle};
  // d_idle: not used by taskBuffer (nb=0) nor plannedTasks (np=0).
  EXPECT_EQ(fixture.darts.choose_victim(0, candidates), fixture.d_idle);
}

TEST(DartsLuf, PrefersFewestPlannedUsesAmongUnbuffered) {
  LufFixture fixture;
  // d_new is used by planned t1 (np=1) but also by buffered t0 (nb=1), so
  // with candidates {d_new, d_idle} the idle one must win.
  const std::vector<DataId> candidates{fixture.d_new, fixture.d_idle};
  EXPECT_EQ(fixture.darts.choose_victim(0, candidates), fixture.d_idle);
}

TEST(DartsLuf, BeladyFallbackWhenAllCandidatesBuffered) {
  LufFixture fixture;
  // Both candidates are inputs of the buffered t0 (next use position 0):
  // the rule must still return one of them.
  const std::vector<DataId> candidates{fixture.d_present, fixture.d_new};
  const DataId victim = fixture.darts.choose_victim(0, candidates);
  EXPECT_TRUE(victim == fixture.d_present || victim == fixture.d_new);
}

TEST(DartsLuf, EvictionReturnsPlannedTasksToPool) {
  LufFixture fixture;
  ASSERT_EQ(fixture.darts.planned_tasks(0).size(), 1u);
  // Evicting d_new invalidates planned t1 (it reads d_new).
  fixture.darts.on_evict(0, fixture.d_new);
  fixture.darts.notify_data_evicted(0, fixture.d_new);
  EXPECT_TRUE(fixture.darts.planned_tasks(0).empty());
  // t1 is available again: with d_present and d_new resident it is re-planned.
  StubMemory memory({fixture.d_present, fixture.d_new});
  EXPECT_EQ(fixture.darts.pop_task(0, memory), fixture.t1);
}

TEST(DartsMultiGpu, TasksAreNeverIssuedTwiceAcrossGpus) {
  const TaskGraph graph = work::make_matmul_2d({.n = 4, .data_bytes = 10});
  Platform platform;
  platform.num_gpus = 3;
  DartsScheduler darts;
  darts.prepare(graph, platform, 13);
  StubMemory memory;

  std::vector<int> seen(graph.num_tasks(), 0);
  // Round-robin pops across GPUs until everyone reports empty.
  bool progress = true;
  while (progress) {
    progress = false;
    for (GpuId gpu = 0; gpu < 3; ++gpu) {
      const TaskId task = darts.pop_task(gpu, memory);
      if (task != kInvalidTask) {
        ++seen[task];
        darts.notify_task_complete(gpu, task);
        progress = true;
      }
    }
  }
  for (TaskId task = 0; task < graph.num_tasks(); ++task) {
    EXPECT_EQ(seen[task], 1) << "task " << task;
  }
}

TEST(DartsMultiGpu, PerGpuScanListsAreIndependent) {
  // Loading data on gpu0 must not remove it from gpu1's scan list: gpu1 can
  // still select it as its own enabling data.
  TaskGraphBuilder builder;
  const DataId d_present = builder.add_data(10);
  const DataId d_enabler = builder.add_data(10);
  const TaskId t0 = builder.add_task(1.0, {d_present, d_enabler});
  const TaskId t1 = builder.add_task(1.0, {d_present, d_enabler});
  const TaskGraph graph = builder.build();

  Platform platform;
  platform.num_gpus = 2;
  DartsScheduler darts;
  darts.prepare(graph, platform, 3);

  StubMemory memory0({d_present});
  const TaskId first = darts.pop_task(0, memory0);
  EXPECT_EQ(first, t0);
  darts.notify_data_loaded(0, d_enabler);  // gpu0 got the data

  // gpu1's scan still contains d_enabler; with t1 planned on gpu0 though,
  // nothing is available for gpu1 until an eviction releases it.
  StubMemory memory1({d_present});
  EXPECT_EQ(darts.pop_task(1, memory1), kInvalidTask);

  // Evict on gpu0 (LUF path): t1 returns to the pool; gpu1 can take it.
  darts.on_evict(0, d_enabler);
  darts.notify_data_evicted(0, d_enabler);
  EXPECT_EQ(darts.pop_task(1, memory1), t1);
}

TEST(DartsMultiGpu, EvictionOnOneGpuDoesNotDisturbOthers) {
  const TaskGraph graph = work::make_matmul_2d({.n = 3, .data_bytes = 10});
  Platform platform;
  platform.num_gpus = 2;
  DartsScheduler darts;
  darts.prepare(graph, platform, 5);
  StubMemory memory({0});  // rowA_0

  const TaskId task0 = darts.pop_task(0, memory);
  ASSERT_NE(task0, kInvalidTask);
  // An eviction notification on gpu1 must not invalidate gpu0's plan.
  const auto planned_before = darts.planned_tasks(0).size();
  darts.notify_data_evicted(1, graph.inputs(task0)[1]);
  EXPECT_EQ(darts.planned_tasks(0).size(), planned_before);
}

TEST(DartsLuf, EvictionPolicyOnlyWiredWhenEnabled) {
  DartsScheduler with_luf{DartsOptions{.use_luf = true}};
  DartsScheduler without_luf{DartsOptions{.use_luf = false}};
  EXPECT_NE(with_luf.eviction_policy(0), nullptr);
  EXPECT_EQ(without_luf.eviction_policy(0), nullptr);
}

}  // namespace
}  // namespace mg::core
