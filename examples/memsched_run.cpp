// memsched_run — general-purpose simulation driver.
//
// Runs any (workload, scheduler, platform) combination from the command
// line and prints the full metric set; the Swiss-army knife for exploring
// configurations beyond the fixed figure harnesses.
//
//   ./memsched_run --workload=matmul2d --n=40 --scheduler=darts+luf --gpus=2
//   ./memsched_run --workload=cholesky --n=24 --scheduler=hmetis+r \
//                  --gpus=4 --mem-mb=500 --sched-cost
//   ./memsched_run --workload=sparse --n=200 --scheduler=dmdar --nvlink
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/offline_model.hpp"
#include "analysis/schedule_io.hpp"
#include "analysis/trace_export.hpp"
#include "analysis/validate.hpp"
#include "cluster/hierarchical.hpp"
#include "cluster/locality.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/fixed_order.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/fault_injector.hpp"
#include "util/flags.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mg;

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name) {
  if (name == "eager") return std::make_unique<sched::EagerScheduler>();
  if (name == "dmda") return std::make_unique<sched::DmdaScheduler>(false);
  if (name == "dmdar") return std::make_unique<sched::DmdaScheduler>(true);
  if (name == "mhfp") return std::make_unique<sched::HfpScheduler>();
  if (name == "hmetis+r") return std::make_unique<sched::HmetisScheduler>();
  if (name == "darts") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = false});
  }
  if (name == "darts+luf") return std::make_unique<core::DartsScheduler>();
  if (name == "darts+luf+opti") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = true, .opti = true});
  }
  if (name == "darts+luf-3inputs") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = true, .three_inputs = true});
  }
  if (name == "darts+luf+opti-3inputs") {
    return std::make_unique<core::DartsScheduler>(core::DartsOptions{
        .use_luf = true, .three_inputs = true, .opti = true});
  }
  if (name == "darts+luf+incr") {
    return std::make_unique<core::DartsScheduler>(
        core::DartsOptions{.use_luf = true, .incremental = true});
  }
  if (name == "locality") return std::make_unique<cluster::LocalityScheduler>();
  // hier:<inner> wraps any of the above in the hierarchical inter-node
  // partitioner (one <inner> instance per cluster node).
  if (name.rfind("hier:", 0) == 0) {
    const std::string inner = name.substr(5);
    if (make_scheduler(inner) == nullptr) return nullptr;  // validate early
    return std::make_unique<cluster::HierarchicalScheduler>(
        [inner] { return make_scheduler(inner); });
  }
  return nullptr;
}

core::TaskGraph make_workload(const std::string& name, std::uint32_t n,
                              std::uint64_t seed, double keep,
                              std::uint64_t output_bytes) {
  if (name == "matmul2d") {
    return work::make_matmul_2d({.n = n, .output_bytes = output_bytes});
  }
  if (name == "matmul2d-random") {
    return work::make_matmul_2d(
        {.n = n, .randomize_order = true, .seed = seed,
         .output_bytes = output_bytes});
  }
  if (name == "matmul3d") return work::make_matmul_3d({.n = n});
  if (name == "cholesky") {
    return work::make_cholesky_tasks({.n = n,
                                      .with_outputs = output_bytes > 0});
  }
  if (name == "sparse") {
    return work::make_sparse_matmul(
        {.n = n, .keep_fraction = keep, .seed = seed});
  }
  if (name == "random") {
    return work::make_random_bipartite(
        {.num_tasks = n * n, .num_data = 2 * n, .min_inputs = 1,
         .max_inputs = 3, .seed = seed});
  }
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "memsched_run: simulate one (workload, scheduler, platform) combo.\n"
      "workloads: matmul2d, matmul2d-random, matmul3d, cholesky, sparse, "
      "random\n"
      "schedulers: eager, dmda, dmdar, mhfp, hmetis+r, darts, darts+luf,\n"
      "            darts+luf+opti, darts+luf-3inputs, darts+luf+opti-3inputs,\n"
      "            darts+luf+incr, locality, hier:<any of the above>");
  flags.define_string("workload", "matmul2d", "workload generator")
      .define_int("n", 20, "workload dimension (N)")
      .define_string("scheduler", "darts+luf", "scheduling policy")
      .define_int("gpus", 1, "number of GPUs")
      .define_int("mem-mb", 500, "GPU memory in MB")
      .define_int("seed", 42, "RNG seed")
      .define_double("keep", 0.02, "sparse keep fraction")
      .define_int("output-kb", 0, "output bytes per task (KB), 0 = none")
      .define_int("pipeline-depth", 4, "worker pipeline depth")
      .define_bool("sched-cost", false, "charge measured scheduler time")
      .define_bool("nvlink", false, "enable peer-to-peer transfers")
      .define_string("speeds", "",
                     "comma-separated per-GPU GFlop/s for heterogeneous "
                     "platforms (overrides --gpus count)")
      .define_bool("validate", true, "validate the execution trace")
      .define_bool("stats", false, "print data-reuse statistics")
      .define_string("trace-json", "",
                     "write a chrome://tracing JSON to this path")
      .define_string("save-schedule", "",
                     "archive the realized per-GPU execution order here")
      .define_string("replay-schedule", "",
                     "ignore --scheduler and replay an archived schedule")
      .define_string("fault-plan", "",
                     "JSON fault plan injected into the run "
                     "(docs/ROBUSTNESS.md)")
      .define_double("checkpoint-interval", 0.0,
                     "checkpoint task progress every N simulated us of "
                     "compute (0 = off)")
      .define_double("checkpoint-fraction", 0.0,
                     "checkpoint task progress every given fraction of each "
                     "task (0 = off)")
      .define_bool("replicate-hot", false,
                   "keep a second replica of hot shared data on another GPU "
                   "while the fault plan threatens GPU losses")
      .define_int("nodes", 1, "cluster nodes the GPUs are split across")
      .define_double("net-bandwidth", 12.5,
                     "inter-node network bandwidth in GB/s (--nodes > 1)")
      .define_double("net-latency", 25.0,
                     "inter-node network latency in us (--nodes > 1)")
      .define_int("host-mem-mb", 0,
                  "per-node host cache of remote data in MB (0 = unbounded; "
                  "--nodes > 1)");
  if (!flags.parse(argc, argv)) return 0;

  using namespace mg;
  const core::TaskGraph graph = make_workload(
      flags.get_string("workload"),
      static_cast<std::uint32_t>(flags.get_int("n")),
      static_cast<std::uint64_t>(flags.get_int("seed")),
      flags.get_double("keep"),
      static_cast<std::uint64_t>(flags.get_int("output-kb")) * 1000);

  core::Platform platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")),
      static_cast<std::uint64_t>(flags.get_int("mem-mb")) * core::kMB);
  platform.nvlink_enabled = flags.get_bool("nvlink");
  platform.num_nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  platform.net_bandwidth_bytes_per_s =
      flags.get_double("net-bandwidth") * 1e9;
  platform.net_latency_us = flags.get_double("net-latency");
  platform.host_memory_bytes =
      static_cast<std::uint64_t>(flags.get_int("host-mem-mb")) * core::kMB;
  if (!flags.get_string("speeds").empty()) {
    std::string spec = flags.get_string("speeds");
    std::vector<double> speeds;
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string token =
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!token.empty()) speeds.push_back(std::stod(token));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    platform.num_gpus = static_cast<std::uint32_t>(speeds.size());
    platform.gpu_gflops_per_device = std::move(speeds);
  }

  std::unique_ptr<core::Scheduler> scheduler;
  if (!flags.get_string("replay-schedule").empty()) {
    const auto schedule =
        analysis::load_schedule(flags.get_string("replay-schedule"));
    if (!schedule.has_value() ||
        !analysis::schedule_matches_graph(*schedule, graph) ||
        schedule->size() != platform.num_gpus) {
      std::fprintf(stderr, "cannot replay schedule from %s\n",
                   flags.get_string("replay-schedule").c_str());
      return 1;
    }
    scheduler = std::make_unique<sched::FixedOrderScheduler>(*schedule);
  } else {
    scheduler = make_scheduler(flags.get_string("scheduler"));
  }
  if (scheduler == nullptr) {
    std::fprintf(stderr, "unknown scheduler '%s'\n",
                 flags.get_string("scheduler").c_str());
    return 1;
  }

  sim::EngineConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.pipeline_depth =
      static_cast<std::uint32_t>(flags.get_int("pipeline-depth"));
  config.account_scheduler_cost = flags.get_bool("sched-cost");
  config.record_trace = flags.get_bool("validate") ||
                        flags.get_bool("stats") ||
                        !flags.get_string("trace-json").empty() ||
                        !flags.get_string("save-schedule").empty();
  config.checkpoint_interval_us = flags.get_double("checkpoint-interval");
  config.checkpoint_fraction = flags.get_double("checkpoint-fraction");
  config.replicate_hot = flags.get_bool("replicate-hot");

  std::unique_ptr<sim::FaultInjector> injector;
  const std::string fault_plan_path = flags.get_string("fault-plan");
  if (!fault_plan_path.empty()) {
    std::string error;
    auto plan = sim::load_fault_plan_file(fault_plan_path, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "--fault-plan %s: %s\n", fault_plan_path.c_str(),
                   error.c_str());
      return 2;
    }
    injector = std::make_unique<sim::FaultInjector>(std::move(*plan));
  }

  sim::RuntimeEngine engine(graph, platform, *scheduler, config);
  if (injector != nullptr) engine.set_fault_injector(injector.get());
  const core::RunMetrics metrics =
      sim::run_engine_or_exit(engine, "memsched_run");

  std::printf("workload   : %s N=%lld (%u tasks, %u data, %.0f MB)\n",
              flags.get_string("workload").c_str(),
              static_cast<long long>(flags.get_int("n")), graph.num_tasks(),
              graph.num_data(),
              static_cast<double>(graph.working_set_bytes()) / 1e6);
  std::printf("scheduler  : %s\n",
              std::string(scheduler->name()).c_str());
  if (platform.is_cluster()) {
    std::printf("platform   : %u GPU(s) x %.0f MB over %u nodes "
                "(net %.1f GB/s + %.0f us)%s\n",
                platform.num_gpus,
                static_cast<double>(platform.gpu_memory_bytes) / 1e6,
                platform.num_nodes,
                platform.net_bandwidth_bytes_per_s / 1e9,
                platform.net_latency_us,
                platform.nvlink_enabled ? " + NVLink" : "");
  } else {
    std::printf("platform   : %u GPU(s) x %.0f MB%s\n", platform.num_gpus,
                static_cast<double>(platform.gpu_memory_bytes) / 1e6,
                platform.nvlink_enabled ? " + NVLink" : "");
  }
  std::printf("gflops     : %.0f (peak %.0f)\n", metrics.achieved_gflops(),
              platform.peak_gflops());
  std::printf("makespan   : %.2f ms\n", metrics.wall_makespan_us() / 1e3);
  std::printf("transfers  : %.0f MB host, %.0f MB peer, %.0f MB written back\n",
              metrics.transfers_mb(), metrics.peer_transfers_mb(),
              static_cast<double>(metrics.total_bytes_written_back()) / 1e6);
  std::printf("loads floor: %.0f MB (every used data once)\n",
              static_cast<double>(analysis::bytes_lower_bound(graph)) / 1e6);
  std::printf("evictions  : %llu\n",
              static_cast<unsigned long long>(metrics.total_evictions()));
  std::printf("sched cost : prepare %.2f ms, decisions %.2f ms%s\n",
              metrics.scheduler_prepare_us / 1e3,
              metrics.scheduler_pop_us / 1e3,
              metrics.scheduler_cost_accounted ? " (charged)" : "");
  if (injector != nullptr) {
    std::printf("faults     : %u gpu loss(es), %u capacity shock(s), "
                "%llu task(s) reclaimed\n",
                metrics.faults.gpu_losses, metrics.faults.capacity_shocks,
                static_cast<unsigned long long>(
                    metrics.faults.tasks_reclaimed));
    std::printf("             %llu transfer retries (%.1f MB re-sent), "
                "%llu emergency evictions\n",
                static_cast<unsigned long long>(
                    metrics.faults.transfer_retries),
                static_cast<double>(metrics.faults.wasted_transfer_bytes) /
                    1e6,
                static_cast<unsigned long long>(
                    metrics.faults.emergency_evictions));
    if (metrics.faults.checkpoints_taken > 0 ||
        metrics.faults.tasks_restored > 0) {
      std::printf("             %llu checkpoint(s) (%.2f ms overhead), "
                  "%llu restore(s) saving %.2f ms of compute\n",
                  static_cast<unsigned long long>(
                      metrics.faults.checkpoints_taken),
                  metrics.faults.checkpoint_overhead_us / 1e3,
                  static_cast<unsigned long long>(
                      metrics.faults.tasks_restored),
                  metrics.faults.compute_saved_us / 1e3);
    }
    if (metrics.faults.replicas_created > 0) {
      std::printf("             %llu replica(s) (%.1f MB, %llu shed, "
                  "%llu protected), %llu post-loss host load(s)\n",
                  static_cast<unsigned long long>(
                      metrics.faults.replicas_created),
                  static_cast<double>(metrics.faults.replica_bytes) / 1e6,
                  static_cast<unsigned long long>(
                      metrics.faults.replicas_shed),
                  static_cast<unsigned long long>(
                      metrics.faults.replicas_protected),
                  static_cast<unsigned long long>(
                      metrics.faults.post_loss_host_loads));
    }
    if (metrics.faults.replay_divergences > 0) {
      std::printf("             %u replay divergence(s), %llu recorded "
                  "task(s) reassigned to survivors\n",
                  metrics.faults.replay_divergences,
                  static_cast<unsigned long long>(
                      metrics.faults.replay_reassigned_tasks));
    }
  }
  for (std::size_t gpu = 0; gpu < metrics.per_gpu.size(); ++gpu) {
    const auto& per = metrics.per_gpu[gpu];
    std::printf("  gpu%zu: %llu tasks, %.0f MB loaded, busy %.1f%%\n", gpu,
                static_cast<unsigned long long>(per.tasks_executed),
                static_cast<double>(per.bytes_loaded) / 1e6,
                100.0 * per.busy_time_us / metrics.makespan_us);
  }

  if (flags.get_bool("validate")) {
    if (injector != nullptr) {
      // A bare trace cannot express GPU losses or reclaimed re-runs; the
      // online InvariantChecker covers faulted runs instead.
      std::printf("trace      : validation skipped (fault plan active)\n");
    } else {
      const auto validation =
          analysis::validate_trace(graph, platform, engine.trace());
      std::printf("trace      : %s\n",
                  validation.ok ? "valid" : validation.error.c_str());
      if (!validation.ok) return 1;
    }
  }

  if (flags.get_bool("stats")) {
    const analysis::ReuseStats stats =
        analysis::compute_reuse_stats(graph, platform, engine.trace());
    std::printf("reuse      : %llu loads over %llu used data (mean %.2f "
                "loads/data, %llu reloads)\n",
                static_cast<unsigned long long>(stats.total_loads),
                static_cast<unsigned long long>(stats.distinct_data),
                stats.mean_loads_per_used_data,
                static_cast<unsigned long long>(stats.reloads));
    if (stats.most_reloaded != core::kInvalidData) {
      std::printf("             worst data: %u (%llu loads)\n",
                  stats.most_reloaded,
                  static_cast<unsigned long long>(stats.max_loads_one_data));
    }
    // Smallest memory for which each GPU's realized order would need no
    // reload at all (with optimal eviction).
    std::printf("             reload-free memory per GPU:");
    for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
      std::printf(" %.0fMB",
                  static_cast<double>(analysis::max_live_footprint(
                      graph, engine.trace().execution_order(gpu))) /
                      1e6);
    }
    std::printf("\n");
  }

  const std::string schedule_path = flags.get_string("save-schedule");
  if (!schedule_path.empty()) {
    analysis::Schedule schedule;
    for (core::GpuId gpu = 0; gpu < platform.num_gpus; ++gpu) {
      schedule.push_back(engine.trace().execution_order(gpu));
    }
    if (analysis::save_schedule(schedule, schedule_path)) {
      std::printf("schedule   : %s\n", schedule_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write schedule to %s\n",
                   schedule_path.c_str());
      return 1;
    }
  }

  const std::string trace_path = flags.get_string("trace-json");
  if (!trace_path.empty()) {
    if (analysis::export_chrome_trace(graph, platform, engine.trace(),
                                      trace_path)) {
      std::printf("trace json : %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}
