// Quickstart: build a task graph, pick a scheduler, simulate, read metrics.
//
//   $ ./examples/quickstart
//
// Simulates a 2D-blocked matrix multiplication (the paper's main scenario)
// on two V100-class GPUs with 500 MB of usable memory each, under three
// schedulers, and prints the achieved GFlop/s and transferred volume.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

int main() {
  using namespace mg;

  // A 40x40 grid of block products: 1600 tasks sharing 80 data items of
  // 14 MB each (1120 MB working set — larger than one GPU memory).
  const core::TaskGraph graph = work::make_matmul_2d({.n = 40});
  const core::Platform platform = core::make_v100_platform(/*num_gpus=*/2);

  std::printf("workload: 2D matmul, %u tasks, %u data, %.0f MB working set\n",
              graph.num_tasks(), graph.num_data(),
              static_cast<double>(graph.working_set_bytes()) / 1e6);
  std::printf("platform: %u GPUs x %.0f MB, %.0f GFlop/s each, %.0f GB/s bus\n\n",
              platform.num_gpus,
              static_cast<double>(platform.gpu_memory_bytes) / 1e6,
              platform.gpu_gflops, platform.bus_bandwidth_bytes_per_s / 1e9);

  struct Entry {
    const char* label;
    std::unique_ptr<core::Scheduler> scheduler;
  };
  std::vector<Entry> entries;
  entries.push_back({"EAGER", std::make_unique<sched::EagerScheduler>()});
  entries.push_back({"DMDAR", std::make_unique<sched::DmdaScheduler>()});
  entries.push_back({"DARTS+LUF", std::make_unique<core::DartsScheduler>()});

  std::printf("%-12s %12s %16s %10s\n", "scheduler", "GFlop/s",
              "transfers (MB)", "evictions");
  for (Entry& entry : entries) {
    sim::RuntimeEngine engine(graph, platform, *entry.scheduler);
    const core::RunMetrics metrics = engine.run();
    std::printf("%-12s %12.0f %16.0f %10llu\n", entry.label,
                metrics.achieved_gflops(), metrics.transfers_mb(),
                static_cast<unsigned long long>(metrics.total_evictions()));
  }
  return 0;
}
