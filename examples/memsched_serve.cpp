// memsched_serve — streamed serving driver.
//
// Streams a sequence of jobs (each one instance of a workload template)
// through the serving subsystem and prints the throughput/latency summary:
// arrival process, admission, deadlines, cross-job data reuse. The serving
// counterpart of memsched_run's single-batch simulation.
//
//   ./memsched_serve --arrival=poisson --rate=100 --jobs=50
//   ./memsched_serve --arrival=closed-loop --concurrency=4 --deadline-us=50000
//   ./memsched_serve --scheduler=eager --no-share --run-report=serve.json
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/locality.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "serve/autoscale_flags.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace mg;

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name) {
  if (name == "eager") return std::make_unique<sched::EagerScheduler>();
  if (name == "dmdar") return std::make_unique<sched::DmdaScheduler>();
  if (name == "mhfp") return std::make_unique<sched::HfpScheduler>();
  if (name == "darts+luf") return std::make_unique<core::DartsScheduler>();
  if (name == "locality") return std::make_unique<cluster::LocalityScheduler>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "memsched_serve: stream jobs through the serving subsystem.\n"
      "schedulers: eager, dmdar, mhfp, darts+luf, locality");
  flags.define_string("workload", "matmul2d", "job template: matmul2d, "
                      "cholesky")
      .define_int("n", 8, "template dimension (N)")
      .define_string("scheduler", "darts+luf", "scheduling policy")
      .define_int("gpus", 2, "number of GPUs")
      .define_int("mem-mb", 500, "GPU memory in MB")
      .define_int("nodes", 1, "cluster nodes the GPUs are spread over")
      .define_double("net-bandwidth", 12.5,
                     "inter-node network bandwidth in GB/s")
      .define_double("net-latency", 25.0, "inter-node network latency in µs")
      .define_int("host-mem-mb", 0,
                  "per-node host cache for remote data in MB (0 = unbounded)")
      .define_int("seed", 42, "RNG seed (arrivals and engine)")
      .define_string("arrival", "poisson", "poisson | closed-loop")
      .define_double("rate", 100.0, "Poisson arrival rate (jobs/s)")
      .define_int("concurrency", 4, "closed-loop client count")
      .define_int("jobs", 50, "number of jobs streamed")
      .define_double("deadline-us", 0.0,
                     "per-job latency SLO in µs (0 = none)")
      .define_int("max-queue", 0,
                  "admission queue bound; jobs past it are shed (0 = "
                  "unbounded)")
      .define_bool("no-share", false,
                   "ablation: no cross-job data sharing")
      .define_bool("check", true,
                   "run the online InvariantChecker over the stream")
      .define_string("fault-plan", "",
                     "JSON fault plan injected mid-stream "
                     "(docs/ROBUSTNESS.md)")
      .define_string("run-report", "",
                     "write the schema-v7 JSON run report (with serving "
                     "section) to this path");
  serve::add_autoscale_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  const auto arrival = serve::parse_arrival_mode(flags.get_string("arrival"));
  if (!arrival.has_value()) {
    std::fprintf(stderr, "unknown --arrival '%s'\n",
                 flags.get_string("arrival").c_str());
    return 1;
  }
  auto scheduler = make_scheduler(flags.get_string("scheduler"));
  if (scheduler == nullptr) {
    std::fprintf(stderr, "unknown scheduler '%s'\n",
                 flags.get_string("scheduler").c_str());
    return 1;
  }

  std::vector<core::TaskGraph> templates;
  const std::uint32_t n = static_cast<std::uint32_t>(flags.get_int("n"));
  if (flags.get_string("workload") == "matmul2d") {
    templates.push_back(work::make_matmul_2d({.n = n}));
  } else if (flags.get_string("workload") == "cholesky") {
    templates.push_back(work::make_cholesky_tasks({.n = n}));
  } else {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 flags.get_string("workload").c_str());
    return 1;
  }

  core::Platform platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")),
      static_cast<std::uint64_t>(flags.get_int("mem-mb")) * core::kMB);
  platform.num_nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  platform.net_bandwidth_bytes_per_s =
      flags.get_double("net-bandwidth") * 1e9;
  platform.net_latency_us = flags.get_double("net-latency");
  platform.host_memory_bytes =
      static_cast<std::uint64_t>(flags.get_int("host-mem-mb")) * core::kMB;
  if (platform.num_nodes == 0 || platform.num_nodes > platform.num_gpus) {
    std::fprintf(stderr, "--nodes must be in 1..%u\n", platform.num_gpus);
    return 1;
  }

  std::vector<serve::JobSpec> jobs(
      static_cast<std::size_t>(flags.get_int("jobs")));
  for (serve::JobSpec& job : jobs) {
    job.deadline_us = flags.get_double("deadline-us");
  }

  serve::ServeConfig config;
  config.arrival.mode = *arrival;
  config.arrival.rate_jobs_per_s = flags.get_double("rate");
  config.arrival.concurrency =
      static_cast<std::uint32_t>(flags.get_int("concurrency"));
  config.arrival.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.admission.max_queue_depth =
      static_cast<std::uint32_t>(flags.get_int("max-queue"));
  config.share_data = !flags.get_bool("no-share");
  config.engine.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.autoscale = serve::autoscale_from_flags(flags);
  config.engine.initial_active_nodes = serve::autoscale_initial_nodes(flags);
  if (config.autoscale.enabled && !platform.is_cluster()) {
    std::fprintf(stderr, "--autoscale needs --nodes >= 2\n");
    return 1;
  }

  serve::ServeEngine engine(templates, jobs, platform, *scheduler, config);

  std::unique_ptr<sim::FaultInjector> injector;
  const std::string fault_plan_path = flags.get_string("fault-plan");
  if (!fault_plan_path.empty()) {
    std::string error;
    auto plan = sim::load_fault_plan_file(fault_plan_path, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "--fault-plan %s: %s\n", fault_plan_path.c_str(),
                   error.c_str());
      return 2;
    }
    injector = std::make_unique<sim::FaultInjector>(std::move(*plan));
    engine.set_fault_injector(injector.get());
  }

  sim::InvariantChecker checker;
  if (flags.get_bool("check")) engine.add_inspector(&checker);
  std::unique_ptr<sim::RunReportCollector> collector;
  if (!flags.get_string("run-report").empty()) {
    sim::RunReportCollector::Options options;
    options.context = "memsched_serve";
    options.collect_trace = false;
    collector = std::make_unique<sim::RunReportCollector>(std::move(options));
    engine.add_inspector(collector.get());
  }

  serve::ServeResult result;
  try {
    result = engine.run();
  } catch (const sim::EngineError& error) {
    sim::exit_engine_failure("memsched_serve", error);
  }
  const sim::RunReport::Serving& serving = result.serving;

  std::printf("template   : %s N=%u (%u tasks/job, %.0f MB working set)\n",
              flags.get_string("workload").c_str(), n,
              templates[0].num_tasks(),
              static_cast<double>(templates[0].working_set_bytes()) / 1e6);
  if (platform.is_cluster()) {
    std::printf("scheduler  : %s on %u GPU(s) over %u nodes "
                "(net %.1f GB/s + %.0f us)\n",
                std::string(scheduler->name()).c_str(), platform.num_gpus,
                platform.num_nodes, platform.net_bandwidth_bytes_per_s / 1e9,
                platform.net_latency_us);
  } else {
    std::printf("scheduler  : %s on %u GPU(s)\n",
                std::string(scheduler->name()).c_str(), platform.num_gpus);
  }
  std::printf("arrival    : %s (%s)\n",
              std::string(serve::arrival_mode_name(*arrival)).c_str(),
              *arrival == serve::ArrivalMode::kPoisson
                  ? (util::format_double(flags.get_double("rate")) +
                     " jobs/s")
                        .c_str()
                  : (std::to_string(flags.get_int("concurrency")) +
                     " clients")
                        .c_str());
  std::printf("jobs       : %u submitted, %u completed, %u shed\n",
              serving.jobs_submitted, serving.jobs_completed,
              serving.jobs_shed);
  std::printf("throughput : %.1f jobs/s over %.2f ms\n",
              serving.throughput_jobs_per_s,
              result.metrics.makespan_us / 1e3);
  std::printf("latency    : p50 %.2f ms, p95 %.2f ms, p99 %.2f ms "
              "(mean %.2f, max %.2f)\n",
              serving.latency_p50_us / 1e3, serving.latency_p95_us / 1e3,
              serving.latency_p99_us / 1e3, serving.latency_mean_us / 1e3,
              serving.latency_max_us / 1e3);
  if (serving.deadline_hits + serving.deadline_misses > 0) {
    std::printf("deadlines  : %u hit, %u missed (%.1f%% miss rate)\n",
                serving.deadline_hits, serving.deadline_misses,
                100.0 * serving.deadline_miss_rate);
  }
  std::printf("reuse      : %.0f MB served from prior jobs' data (%llu "
              "hits)%s\n",
              static_cast<double>(serving.cross_job_reuse_bytes) / 1e6,
              static_cast<unsigned long long>(serving.cross_job_reuse_hits),
              config.share_data ? "" : " [sharing ablated]");
  std::printf("in flight  : peak %u jobs, queue peak %u\n",
              serving.peak_jobs_in_flight, serving.peak_queue_depth);
  if (config.autoscale.enabled) {
    std::printf("autoscale  : %u scale-out, %u scale-in decision(s) applied "
                "(%u node(s) serving at end)\n",
                result.scale_out_events, result.scale_in_events,
                engine.engine().active_node_count());
  }
  std::printf("transfers  : %.0f MB host, %llu loads\n",
              result.metrics.transfers_mb(),
              static_cast<unsigned long long>(result.metrics.total_loads()));
  if (injector != nullptr) {
    std::printf("faults     : %u gpu loss(es), %llu task(s) reclaimed\n",
                result.metrics.faults.gpu_losses,
                static_cast<unsigned long long>(
                    result.metrics.faults.tasks_reclaimed));
  }
  if (flags.get_bool("check")) {
    std::printf("invariants : %s\n", checker.ok() ? "ok" : "VIOLATED");
    if (!checker.ok()) return 1;
  }

  if (collector != nullptr) {
    sim::RunReport report = collector->report();
    report.serving = serving;
    report.autoscaling.scale_out_events = result.scale_out_events;
    report.autoscaling.scale_in_events = result.scale_in_events;
    const std::string path = flags.get_string("run-report");
    if (sim::write_run_reports({report}, "memsched_serve", path)) {
      std::printf("run report : %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write run report to %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
