// Domain example: a communication-dominated sparse workload (98% of the 2D
// matmul's tasks dropped) on four GPUs — the regime of Figures 12-13 where
// eviction policy and transfer spreading decide performance.
//
// Demonstrates:
//   * building a sparse workload and measuring its
//     communication-to-computation ratio,
//   * comparing LRU-based scheduling against DARTS+LUF,
//   * the transfer lower bound from the analysis module.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/offline_model.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "workloads/sparse_matmul.hpp"

int main() {
  using namespace mg;

  const core::TaskGraph graph = work::make_sparse_matmul(
      {.n = 220, .keep_fraction = 0.02, .seed = 7});
  const core::Platform platform = core::make_v100_platform(4);

  const double compute_s =
      graph.total_flops() / (platform.gpu_gflops * 1e9);
  const double min_transfer_s =
      static_cast<double>(analysis::bytes_lower_bound(graph)) /
      platform.bus_bandwidth_bytes_per_s;
  std::printf("sparse 2D matmul: %u of %u possible tasks kept, %u data\n",
              graph.num_tasks(), 220 * 220, graph.num_data());
  std::printf("single-GPU compute: %.2f s; minimum transfer time: %.2f s "
              "(ratio %.2f — transfer-heavy)\n\n",
              compute_s, min_transfer_s, min_transfer_s / compute_s);

  struct Entry {
    const char* label;
    std::unique_ptr<core::Scheduler> scheduler;
  };
  std::vector<Entry> entries;
  entries.push_back({"DMDAR", std::make_unique<sched::DmdaScheduler>()});
  entries.push_back({"hMETIS+R", std::make_unique<sched::HmetisScheduler>()});
  entries.push_back(
      {"DARTS (LRU)", std::make_unique<core::DartsScheduler>(
                          core::DartsOptions{.use_luf = false})});
  entries.push_back({"DARTS+LUF", std::make_unique<core::DartsScheduler>()});

  const double floor_mb =
      static_cast<double>(analysis::bytes_lower_bound(graph)) / 1e6;
  std::printf("%-12s %10s %14s %20s\n", "scheduler", "GFlop/s",
              "transfers", "vs. cold-start floor");
  for (Entry& entry : entries) {
    sim::RuntimeEngine engine(graph, platform, *entry.scheduler);
    const core::RunMetrics metrics = engine.run();
    std::printf("%-12s %10.0f %12.0f MB %19.2fx\n", entry.label,
                metrics.achieved_gflops(), metrics.transfers_mb(),
                metrics.transfers_mb() / floor_mb);
  }
  return 0;
}
