// plot_figure — renders a figure-harness CSV as SVG line charts (one per
// metric), reproducing the paper's figure style without any external
// plotting stack:
//
//   ./build/bench/fig03_2d_1gpu_perf --out fig03.csv
//   ./build/examples/plot_figure fig03.csv --metric=gflops --out=fig03.svg
//
// Reference lines (GFlop/s max, fits-in-memory thresholds, PCI limit) are
// taken from the CSV's comment header automatically.
#include <cstdio>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "viz/figure_csv.hpp"
#include "viz/svg_chart.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "plot_figure: render a bench/fig* CSV as an SVG line chart");
  flags.define_string("metric", "gflops",
                      "column to plot (gflops, transfers_mb, loads, ...)")
      .define_string("out", "", "output SVG path (default: <csv>.<metric>.svg)")
      .define_string("title", "", "chart title (default: derived)")
      .define_bool("log-y", false, "logarithmic y axis");
  if (!flags.parse(argc, argv)) return 0;

  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: plot_figure <figure.csv> [flags]\n");
    return 1;
  }
  const std::string csv_path = flags.positional()[0];
  const std::string metric = flags.get_string("metric");

  const viz::FigureData data = viz::parse_figure_csv(csv_path);
  if (data.empty()) {
    std::fprintf(stderr, "no data parsed from %s\n", csv_path.c_str());
    return 1;
  }

  std::vector<viz::Series> series;
  for (const auto& [scheduler, rows] : data.by_scheduler) {
    viz::Series s;
    s.label = scheduler;
    for (const auto& row : rows) {
      const auto it = row.values.find(metric);
      if (it != row.values.end()) {
        s.points.emplace_back(row.working_set_mb, it->second);
      }
    }
    if (!s.points.empty()) series.push_back(std::move(s));
  }
  if (series.empty()) {
    std::fprintf(stderr, "metric '%s' not present in %s\n", metric.c_str(),
                 csv_path.c_str());
    return 1;
  }

  std::vector<viz::ReferenceLine> references;
  if (metric == "gflops" && data.gflops_max > 0.0) {
    references.push_back({"GFlop/s max", data.gflops_max, true});
  }
  if (data.threshold_both_fit_mb > 0.0) {
    references.push_back(
        {"A and B fit", data.threshold_both_fit_mb, false});
  }
  if (data.threshold_one_fits_mb > 0.0) {
    references.push_back({"B fits", data.threshold_one_fits_mb, false});
  }
  if (metric == "transfers_mb" && !data.pci_limit.empty()) {
    viz::Series pci;
    pci.label = "PCI bus limit";
    pci.points = data.pci_limit;
    series.push_back(std::move(pci));
  }

  viz::ChartConfig config;
  config.title = flags.get_string("title").empty()
                     ? csv_path + " — " + metric
                     : flags.get_string("title");
  config.x_label = "Working set (MB)";
  config.y_label = metric == "gflops" ? "GFlop/s" : metric;
  config.logarithmic_y = flags.get_bool("log-y");

  std::string out = flags.get_string("out");
  if (out.empty()) out = csv_path + "." + metric + ".svg";
  if (!viz::write_line_chart(config, series, references, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu series)\n", out.c_str(), series.size());
  return 0;
}
