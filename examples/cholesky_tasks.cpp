// Domain example: scheduling the task set of a tiled Cholesky factorization
// (dependencies removed, as in Section V-F of the paper) on four GPUs.
//
// Demonstrates:
//   * a heterogeneous-kernel workload (POTRF/TRSM/SYRK/GEMM, 1-3 inputs),
//   * the DARTS "3inputs" and "OPTI" variants and their decision-time
//     versus schedule-quality trade-off,
//   * reading per-GPU metrics and the scheduler decision cost.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "workloads/cholesky.hpp"

int main(int argc, char** argv) {
  using namespace mg;

  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(
                                         std::atoi(argv[1]))
                                   : 24;
  const core::TaskGraph graph = work::make_cholesky_tasks({.n = n});
  const core::Platform platform = core::make_v100_platform(4);

  std::printf("Cholesky task set, N=%u tiles: %u tasks over %u tiles "
              "(%.0f MB working set)\n\n",
              n, graph.num_tasks(), graph.num_data(),
              static_cast<double>(graph.working_set_bytes()) / 1e6);

  struct Entry {
    const char* label;
    std::unique_ptr<core::Scheduler> scheduler;
    bool account_cost;
  };
  std::vector<Entry> entries;
  entries.push_back({"EAGER", std::make_unique<sched::EagerScheduler>(), true});
  entries.push_back({"DMDAR", std::make_unique<sched::DmdaScheduler>(), true});
  entries.push_back(
      {"DARTS+LUF-3inputs",
       std::make_unique<core::DartsScheduler>(
           core::DartsOptions{.use_luf = true, .three_inputs = true}),
       true});
  entries.push_back(
      {"DARTS+LUF+OPTI-3inputs",
       std::make_unique<core::DartsScheduler>(core::DartsOptions{
           .use_luf = true, .three_inputs = true, .opti = true}),
       true});

  std::printf("%-24s %10s %12s %12s %14s\n", "scheduler", "GFlop/s",
              "transfers", "evictions", "decision time");
  for (Entry& entry : entries) {
    sim::EngineConfig config;
    config.account_scheduler_cost = entry.account_cost;
    sim::RuntimeEngine engine(graph, platform, *entry.scheduler, config);
    const core::RunMetrics metrics = engine.run();
    std::printf("%-24s %10.0f %10.0f MB %12llu %11.1f ms\n", entry.label,
                metrics.achieved_gflops(), metrics.transfers_mb(),
                static_cast<unsigned long long>(metrics.total_evictions()),
                metrics.scheduler_pop_us / 1e3);
  }

  // Per-GPU balance for the last run.
  std::printf("\nload balance of the last scheduler (tasks per GPU):");
  {
    core::DartsScheduler darts{core::DartsOptions{
        .use_luf = true, .three_inputs = true, .opti = true}};
    sim::RuntimeEngine engine(graph, platform, darts);
    const core::RunMetrics metrics = engine.run();
    for (const auto& gpu : metrics.per_gpu) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(gpu.tasks_executed));
    }
  }
  std::printf("\n");
  return 0;
}
