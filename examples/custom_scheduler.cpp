// Extension example: writing your own scheduling policy against the public
// API — the way a downstream user would prototype a new heuristic and
// benchmark it against the paper's schedulers on the same simulator.
//
// The toy policy below, "RowGreedy", keeps one shared queue but always
// serves the task with the most inputs already resident on the requesting
// GPU (a global-queue cousin of Ready). It also supplies a custom eviction
// policy that protects the most-shared data items.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "core/darts.hpp"
#include "core/eviction.hpp"
#include "core/scheduler.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

namespace {

using namespace mg;

/// Evicts the resident candidate with the fewest remaining consumers.
class FewestConsumersEviction final : public core::EvictionPolicy {
 public:
  explicit FewestConsumersEviction(const core::TaskGraph& graph)
      : graph_(graph), remaining_(graph.num_data(), 0) {
    for (core::DataId data = 0; data < graph.num_data(); ++data) {
      remaining_[data] =
          static_cast<std::uint32_t>(graph.consumers(data).size());
    }
  }

  [[nodiscard]] std::string_view name() const override {
    return "fewest-consumers";
  }

  void on_use(core::GpuId, core::DataId data) override {
    if (remaining_[data] > 0) --remaining_[data];
  }

  [[nodiscard]] core::DataId choose_victim(
      core::GpuId, std::span<const core::DataId> candidates) override {
    return *std::min_element(candidates.begin(), candidates.end(),
                             [this](core::DataId a, core::DataId b) {
                               return remaining_[a] < remaining_[b];
                             });
  }

 private:
  const core::TaskGraph& graph_;
  std::vector<std::uint32_t> remaining_;
};

/// Shared-queue scheduler that serves the most-resident task first.
class RowGreedyScheduler final : public core::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "RowGreedy"; }

  void prepare(const core::TaskGraph& graph, const core::Platform&,
               std::uint64_t) override {
    graph_ = &graph;
    pending_.clear();
    for (core::TaskId task = 0; task < graph.num_tasks(); ++task) {
      pending_.push_back(task);
    }
    eviction_ = std::make_unique<FewestConsumersEviction>(graph);
  }

  [[nodiscard]] core::TaskId pop_task(core::GpuId,
                                      const core::MemoryView& memory) override {
    if (pending_.empty()) return core::kInvalidTask;
    std::size_t best = 0;
    std::uint64_t best_missing = ~std::uint64_t{0};
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      std::uint64_t missing = 0;
      for (core::DataId data : graph_->inputs(pending_[i])) {
        if (!memory.is_present_or_fetching(data)) {
          missing += graph_->data_size(data);
        }
      }
      if (missing < best_missing) {
        best_missing = missing;
        best = i;
        if (missing == 0) break;
      }
    }
    const core::TaskId task = pending_[best];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
    return task;
  }

  [[nodiscard]] core::EvictionPolicy* eviction_policy(core::GpuId) override {
    return eviction_.get();
  }

 private:
  const core::TaskGraph* graph_ = nullptr;
  std::deque<core::TaskId> pending_;
  std::unique_ptr<FewestConsumersEviction> eviction_;
};

}  // namespace

int main() {
  const core::TaskGraph graph = work::make_matmul_2d({.n = 50});
  const core::Platform platform = core::make_v100_platform(2);

  std::printf("custom scheduler demo: 2D matmul N=50 (%.0f MB) on 2 GPUs\n\n",
              static_cast<double>(graph.working_set_bytes()) / 1e6);

  struct Entry {
    const char* label;
    std::unique_ptr<core::Scheduler> scheduler;
  };
  std::vector<Entry> entries;
  entries.push_back({"EAGER (baseline)",
                     std::make_unique<sched::EagerScheduler>()});
  entries.push_back({"RowGreedy (custom)",
                     std::make_unique<RowGreedyScheduler>()});
  entries.push_back({"DARTS+LUF (paper)",
                     std::make_unique<core::DartsScheduler>()});

  std::printf("%-20s %10s %14s\n", "scheduler", "GFlop/s", "transfers");
  for (Entry& entry : entries) {
    sim::RuntimeEngine engine(graph, platform, *entry.scheduler);
    const core::RunMetrics metrics = engine.run();
    std::printf("%-20s %10.0f %12.0f MB\n", entry.label,
                metrics.achieved_gflops(), metrics.transfers_mb());
  }
  return 0;
}
