#!/usr/bin/env bash
# Regenerates every figure of the paper: runs each bench/fig* harness and
# renders its CSV to SVG (GFlop/s chart, plus a transfers chart for the
# transfer figures). Usage:
#
#   ./scripts/make_figures.sh [build-dir] [output-dir] [extra harness flags]
#
# e.g. ./scripts/make_figures.sh build figures --full --jobs 8
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-figures}"
shift $(( $# > 2 ? 2 : $# )) || true

mkdir -p "$OUT_DIR"

for bench in "$BUILD_DIR"/bench/fig*; do
  name="$(basename "$bench")"
  csv="$OUT_DIR/$name.csv"
  echo "== $name"
  "$bench" --out "$csv" "$@"
  "$BUILD_DIR"/examples/plot_figure "$csv" --metric=gflops \
      --out="$OUT_DIR/$name.gflops.svg" --title="$name"
  case "$name" in
    *transfers*|fig12*|fig13*)
      "$BUILD_DIR"/examples/plot_figure "$csv" --metric=transfers_mb \
          --out="$OUT_DIR/$name.transfers.svg" --title="$name (transfers)"
      ;;
  esac
done

echo "figures written to $OUT_DIR/"
