#!/usr/bin/env python3
"""Tracked-perf guard: compare a fresh bench JSON against the committed
baseline and fail on an events/sec regression beyond the tolerance.

Usage:
    check_bench.py FRESH.json BASELINE.json [--tolerance 0.20]

Both files are the single-object JSON emitted by bench_autoscale /
bench_occupancy ({"bench": ..., "events": ..., "events_per_sec": ...}).
The guard is deliberately loose (20% by default): CI boxes are not the
machine that recorded the baseline, so only a substantial drop — the kind
a quadratic event loop or an accidental O(n) scan in a hot path causes —
should trip it. Event-count drift is reported but does not gate; the
simulator's own differential tests pin behavior.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(
        description="fail when FRESH regresses events/sec vs. BASELINE")
    parser.add_argument("fresh", help="bench JSON from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional events/sec drop (default: 0.20)")
    args = parser.parse_args()

    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    if fresh.get("bench") != baseline.get("bench"):
        print(
            f"check_bench: bench mismatch: fresh is {fresh.get('bench')!r}, "
            f"baseline is {baseline.get('bench')!r}",
            file=sys.stderr)
        return 1

    fresh_rate = float(fresh["events_per_sec"])
    base_rate = float(baseline["events_per_sec"])
    if base_rate <= 0:
        print("check_bench: baseline events_per_sec is not positive",
              file=sys.stderr)
        return 1

    floor = base_rate * (1.0 - args.tolerance)
    ratio = fresh_rate / base_rate
    print(f"check_bench[{fresh.get('bench')}]: fresh {fresh_rate:.0f} ev/s "
          f"vs baseline {base_rate:.0f} ev/s "
          f"({ratio:.2%}, floor {floor:.0f})")
    if fresh.get("events") != baseline.get("events"):
        print(f"check_bench: note: event count moved "
              f"{baseline.get('events')} -> {fresh.get('events')} "
              f"(behavior change; not gating)")

    if fresh_rate < floor:
        print(
            f"check_bench: FAIL: events/sec regressed more than "
            f"{args.tolerance:.0%} ({ratio:.2%} of baseline)",
            file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
