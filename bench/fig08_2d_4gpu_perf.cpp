// Figure 8: performance on the 2D matmul with 4 V100s, adding the
// DARTS+LUF+threshold variant that caps the data scan to contain DARTS's
// decision time on large task sets.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 8: 2D matmul, 4 GPUs, with scheduler cost");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig08", "2D matmul on 4 V100s, performance");
  const bool full = flags.get_bool("full");
  const double max_ws = full ? 8000.0 : 4000.0;
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(max_ws, full));

  // The paper enables the scan threshold only beyond 3500 MB working sets.
  bench::SchedulerSpec threshold =
      bench::darts_spec({.use_luf = true, .scan_threshold = 50},
                        /*with_sched_time=*/true);
  threshold.min_working_set_mb = 3500.0;

  bench::run_figure(
      config, points,
      {bench::eager_spec(),
       bench::dmdar_spec(),
       bench::darts_spec({.use_luf = false}, /*with_sched_time=*/true),
       bench::darts_spec({.use_luf = true}, /*with_sched_time=*/true),
       threshold,
       bench::hmetis_spec(/*with_partition_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
