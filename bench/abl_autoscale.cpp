// Ablation: elastic autoscaling vs. fixed topology under an arrival spike.
//
// Streams a Poisson burst of matmul jobs through three topology arms on the
// same multi-node platform with a bounded admission queue:
//   fixed-small  — only the first node serves, autoscaler off (the
//                  capacity you are stuck with if you cannot scale);
//   fixed-large  — every node serves from t=0 (the over-provisioned upper
//                  bound);
//   autoscaled   — starts like fixed-small, and the autoscaler absorbs the
//                  spike by joining nodes (and drains them again when the
//                  queue empties out).
// The claim under test (--check): the autoscaled arm sheds fewer jobs than
// fixed-small without missing more deadlines, and its planned drains lose
// zero task progress (no unplanned reclaims; the InvariantChecker re-proves
// the drain/join protocol event by event).
//
//   ./abl_autoscale --gpus=4 --nodes=2 --rate=400 --num-jobs=80 --check
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/figure_harness.hpp"
#include "sched/hfp.hpp"
#include "serve/autoscale_flags.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "workloads/matmul2d.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "Autoscaling ablation: a Poisson spike absorbed by scale-out vs. "
      "fixed topologies (sheds, deadline misses, drain/join counters)");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  flags.define_int("n", 8, "matmul template dimension (N)")
      .define_int("num-jobs", 80, "jobs in the burst")
      .define_double("rate", 400.0, "Poisson arrival rate (jobs/s)")
      .define_double("deadline-ms", 80.0, "per-job latency SLO in ms")
      .define_int("max-in-flight", 4,
                  "admission bound on concurrently in-flight jobs")
      .define_int("max-queue", 4,
                  "admission queue bound; jobs past it are shed")
      .define_bool("check", false,
                   "assert the headline claim: autoscaled sheds fewer jobs "
                   "than fixed-small at no worse deadline-miss rate, with "
                   "zero lost progress");
  serve::add_autoscale_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_autoscale",
      "elastic autoscaling vs. fixed topology under an arrival spike");
  if (!config.platform.is_cluster()) {
    std::fprintf(stderr, "abl_autoscale needs --nodes >= 2\n");
    return 1;
  }

  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n"))}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("num-jobs"));
  std::vector<serve::JobSpec> jobs(num_jobs);
  for (serve::JobSpec& job : jobs) {
    job.deadline_us = flags.get_double("deadline-ms") * 1e3;
  }

  util::CsvWriter csv(
      {"arm", "jobs_submitted", "jobs_completed", "jobs_shed",
       "deadline_miss_rate", "throughput_jobs_per_s", "p95_ms",
       "scale_out_events", "scale_in_events", "nodes_joined", "nodes_drained",
       "tasks_drained", "migrated_mb", "warm_fills", "tasks_reclaimed"},
      config.output_path);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs over %u nodes; %u jobs at %g jobs/s, "
                "queue bound %lld",
                config.platform.num_gpus, config.platform.num_nodes, num_jobs,
                flags.get_double("rate"),
                static_cast<long long>(flags.get_int("max-queue")));
  csv.comment(line);

  struct ArmResult {
    serve::ServeResult result;
    sim::RunReport::Autoscaling autoscaling;
  };
  // One arm: a full streamed run on `initial_nodes`, autoscaler on/off.
  auto run_arm = [&](const std::string& arm, std::uint32_t initial_nodes,
                     bool autoscale) {
    serve::ServeConfig serve_config;
    serve_config.arrival.mode = serve::ArrivalMode::kPoisson;
    serve_config.arrival.rate_jobs_per_s = flags.get_double("rate");
    serve_config.arrival.seed = config.seed;
    serve_config.admission.max_jobs_in_flight =
        static_cast<std::uint32_t>(flags.get_int("max-in-flight"));
    serve_config.admission.max_queue_depth =
        static_cast<std::uint32_t>(flags.get_int("max-queue"));
    serve_config.engine.seed = config.seed;
    serve_config.engine.initial_active_nodes = initial_nodes;
    if (autoscale) {
      serve_config.autoscale = serve::autoscale_from_flags(flags);
      serve_config.autoscale.enabled = true;
    }

    // mHFP: a WorkQueueScheduler, so the arm also exercises the
    // notify_node_draining/added queue rebalance path.
    sched::HfpScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, config.platform, scheduler,
                              serve_config);
    sim::InvariantChecker checker;
    engine.add_inspector(&checker);
    sim::RunReportCollector collector(
        {.context = "abl_autoscale " + arm, .collect_trace = false});
    engine.add_inspector(&collector);

    ArmResult arm_result;
    try {
      arm_result.result = engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure("abl_autoscale " + arm, error);
    }
    if (!checker.ok()) {
      std::fprintf(stderr, "abl_autoscale %s: invariant violation\n",
                   arm.c_str());
      std::exit(1);
    }
    arm_result.autoscaling = collector.report().autoscaling;
    arm_result.autoscaling.scale_out_events =
        arm_result.result.scale_out_events;
    arm_result.autoscaling.scale_in_events = arm_result.result.scale_in_events;

    const sim::RunReport::Serving& serving = arm_result.result.serving;
    const sim::RunReport::Autoscaling& scaling = arm_result.autoscaling;
    csv.row({arm, static_cast<std::int64_t>(serving.jobs_submitted),
             static_cast<std::int64_t>(serving.jobs_completed),
             static_cast<std::int64_t>(serving.jobs_shed),
             serving.deadline_miss_rate, serving.throughput_jobs_per_s,
             serving.latency_p95_us / 1e3,
             static_cast<std::int64_t>(scaling.scale_out_events),
             static_cast<std::int64_t>(scaling.scale_in_events),
             static_cast<std::int64_t>(scaling.nodes_joined),
             static_cast<std::int64_t>(scaling.nodes_drained),
             static_cast<std::int64_t>(scaling.tasks_drained),
             static_cast<double>(scaling.migrated_bytes) / 1e6,
             static_cast<std::int64_t>(scaling.warm_fills),
             static_cast<std::int64_t>(
                 arm_result.result.metrics.faults.tasks_reclaimed)});
    return arm_result;
  };

  const ArmResult fixed_small = run_arm("fixed-small", 1, false);
  const ArmResult fixed_large =
      run_arm("fixed-large", config.platform.num_nodes, false);
  const ArmResult autoscaled = run_arm("autoscaled", 1, true);
  (void)fixed_large;

  if (flags.get_bool("check")) {
    const auto& small = fixed_small.result.serving;
    const auto& elastic = autoscaled.result.serving;
    bool ok = true;
    if (elastic.jobs_shed >= small.jobs_shed) {
      std::fprintf(stderr,
                   "CLAIM FAILED: autoscaled shed %u jobs, fixed-small %u "
                   "(expected fewer)\n",
                   elastic.jobs_shed, small.jobs_shed);
      ok = false;
    }
    if (elastic.deadline_miss_rate > small.deadline_miss_rate) {
      std::fprintf(stderr,
                   "CLAIM FAILED: autoscaled deadline-miss rate %.3f above "
                   "fixed-small %.3f\n",
                   elastic.deadline_miss_rate, small.deadline_miss_rate);
      ok = false;
    }
    if (autoscaled.result.scale_out_events == 0) {
      std::fprintf(stderr, "CLAIM FAILED: the autoscaler never scaled out\n");
      ok = false;
    }
    if (autoscaled.result.metrics.faults.tasks_reclaimed != 0) {
      std::fprintf(stderr,
                   "CLAIM FAILED: planned topology change reclaimed %llu "
                   "task(s) — drains must lose zero progress\n",
                   static_cast<unsigned long long>(
                       autoscaled.result.metrics.faults.tasks_reclaimed));
      ok = false;
    }
    if (!ok) return 1;
    std::printf("claim OK: autoscaled shed %u < fixed-small %u, miss rate "
                "%.3f <= %.3f, %u scale-out(s), zero reclaims\n",
                elastic.jobs_shed, small.jobs_shed,
                elastic.deadline_miss_rate, small.deadline_miss_rate,
                autoscaled.result.scale_out_events);
  }
  return 0;
}
