// Ablation: the Ready lookahead window. StarPU's dmdar scans the whole
// local queue; this sweep shows how DMDAR degrades toward EAGER as the
// window shrinks (the paper's Section V-B explanation of why Ready rescues
// DMDAR from the LRU pathology requires reaching tasks a full row ahead).
#include <memory>
#include <string>

#include "common/figure_harness.hpp"
#include "matmul_points.hpp"
#include "sched/dmda.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Ready-window ablation for DMDAR");
  bench::add_standard_flags(flags, /*default_gpus=*/1);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_ready_window", "Ready window ablation on 2D matmul");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");
  const auto ns = bench::matmul2d_ns(full ? 2000.0 : 1400.0, full);

  util::CsvWriter csv(
      {"working_set_mb", "ready_window", "gflops", "transfers_mb"},
      config.output_path);

  const std::size_t unlimited = sched::kDefaultReadyWindow;
  for (std::uint32_t n : ns) {
    const core::TaskGraph graph = work::make_matmul_2d({.n = n});
    const double ws_mb =
        static_cast<double>(graph.working_set_bytes()) / 1e6;
    for (std::size_t window : {std::size_t{1}, std::size_t{8},
                               std::size_t{64}, std::size_t{512}, unlimited}) {
      sched::DmdaScheduler scheduler(/*ready=*/true, window);
      sim::RuntimeEngine engine(graph, config.platform, scheduler,
                                {.seed = config.seed});
      const core::RunMetrics metrics = observer.run(
          engine, graph,
          "window=" + (window == unlimited ? std::string("unlimited")
                                           : std::to_string(window)) +
              " n=" + std::to_string(n));
      csv.row({ws_mb,
               window == unlimited ? std::string("unlimited")
                                   : std::to_string(window),
               metrics.achieved_gflops(), metrics.transfers_mb()});
    }
  }
  return 0;
}
