// Ablation: DARTS decision-cost variants — the paper's Section VI first
// future-work item ("improve the computational complexity of DARTS without
// sacrificing too much on the schedule quality"). Compares the faithful
// scan, the paper's OPTI and threshold mitigations, and our incremental
// n(D) maintenance, reporting both schedule quality (GFlop/s with the
// decision time charged) and the raw decision cost.
#include <memory>
#include <string>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "matmul_points.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "workloads/cholesky.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("DARTS decision-cost ablation (scan vs OPTI vs "
                    "threshold vs incremental)");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_darts_cost", "DARTS variants: quality vs decision cost");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");

  util::CsvWriter csv({"workload", "working_set_mb", "variant", "gflops",
                       "transfers_mb", "decision_ms"},
                      config.output_path);

  struct Variant {
    const char* label;
    core::DartsOptions options;
  };
  const Variant variants[] = {
      {"scan", {.use_luf = true}},
      {"OPTI", {.use_luf = true, .opti = true}},
      {"threshold", {.use_luf = true, .scan_threshold = 50}},
      {"incremental", {.use_luf = true, .incremental = true}},
  };

  auto run_point = [&](const std::string& workload,
                       const core::TaskGraph& graph) {
    const double ws_mb =
        static_cast<double>(graph.working_set_bytes()) / 1e6;
    for (const Variant& variant : variants) {
      core::DartsScheduler darts(variant.options);
      sim::EngineConfig engine_config;
      engine_config.seed = config.seed;
      engine_config.account_scheduler_cost = true;
      sim::RuntimeEngine engine(graph, config.platform, darts, engine_config);
      const core::RunMetrics metrics =
          observer.run(engine, graph, workload + " " + variant.label);
      csv.row({workload, ws_mb, std::string(variant.label),
               metrics.achieved_gflops(), metrics.transfers_mb(),
               metrics.scheduler_pop_us / 1e3});
    }
  };

  for (std::uint32_t n : bench::matmul2d_ns(full ? 6000.0 : 3000.0, full)) {
    run_point("matmul2d", work::make_matmul_2d({.n = n}));
  }
  const std::vector<std::uint32_t> cholesky_ns =
      full ? std::vector<std::uint32_t>{16, 24, 32, 40, 48}
           : std::vector<std::uint32_t>{16, 24, 32};
  for (std::uint32_t n : cholesky_ns) {
    run_point("cholesky", work::make_cholesky_tasks({.n = n}));
  }
  return 0;
}
