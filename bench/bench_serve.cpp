// bench_serve — tracked perf baseline for the SLO-tiered serving path.
//
// Runs one fixed, deterministic serving scenario with the whole SLO layer
// armed (two tiers with admission weights and a high-tier deadline,
// eviction protection for the high tier, cross-job super-task batching
// under a tight in-flight bound) and emits BENCH_serve.json: simulation
// events processed, wall seconds, events/sec, peak RSS and the fusion
// count. CI runs it every push and gates events/sec against the committed
// baseline via scripts/check_bench.py, so a slowdown in the fusion
// bookkeeping, the veto-threaded eviction scans or the tier-aware
// admission queue shows as a step in the series. The scenario is pinned —
// flags exist for local experiments, but the tracked numbers come from
// the defaults.
//
//   ./bench_serve --out=BENCH_serve.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sched/dmda.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/run_report.hpp"
#include "util/flags.hpp"
#include "workloads/matmul2d.hpp"

namespace {

/// Peak resident set in MB from /proc/self/status (VmHWM); 0.0 where the
/// proc filesystem is unavailable (non-Linux).
double peak_rss_mb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lf", &kb);
      break;
    }
  }
  std::fclose(status);
  return kb / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "bench_serve: tracked perf baseline — one pinned SLO-tiered serving "
      "run with batching and eviction protection, emitting events/sec and "
      "peak RSS as JSON");
  flags.define_string("out", "BENCH_serve.json", "output JSON path")
      .define_int("jobs", 120, "jobs in the burst")
      .define_int("n", 8, "matmul template dimension (N)")
      .define_int("gpus", 4, "GPUs")
      .define_int("repeat", 3, "timed repetitions; fastest wall time wins");
  if (!flags.parse(argc, argv)) return 0;

  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n"))}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("jobs"));
  std::vector<serve::JobSpec> jobs(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) jobs[j].priority = j % 2;

  core::Platform platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")), 200 * core::kMB);

  std::uint64_t events = 0;
  std::uint64_t jobs_fused = 0;
  double best_wall_s = 0.0;
  const int repeat = static_cast<int>(flags.get_int("repeat"));
  for (int rep = 0; rep < repeat; ++rep) {
    serve::ServeConfig config;
    config.arrival.mode = serve::ArrivalMode::kPoisson;
    config.arrival.rate_jobs_per_s = 500.0;
    config.arrival.seed = 42;
    config.admission.max_jobs_in_flight = 6;
    config.engine.seed = 42;
    config.slo.enabled = true;
    config.slo.tiers = slo::TierPolicy{
        {{.min_priority = 0, .deadline_us = 0.0, .admission_weight = 0},
         {.min_priority = 1, .deadline_us = 80e3, .admission_weight = 4}}};
    config.slo.protect_min_priority = 1;
    config.slo.batching = true;
    config.slo.max_batch = 4;
    config.slo.marginal_compute = 0.4;

    sched::DmdaScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler, config);
    sim::RunReportCollector collector(
        {.context = "bench_serve", .collect_trace = false});
    engine.add_inspector(&collector);
    const auto start = std::chrono::steady_clock::now();
    try {
      (void)engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure("bench_serve", error);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::uint64_t run_events =
        engine.engine().event_queue().events_processed();
    if (rep == 0) {
      events = run_events;
      jobs_fused = collector.report().slo.jobs_fused;
    } else if (events != run_events) {
      std::fprintf(stderr,
                   "bench_serve: nondeterministic event count (%llu vs "
                   "%llu)\n",
                   static_cast<unsigned long long>(events),
                   static_cast<unsigned long long>(run_events));
      return 1;
    }
    if (rep == 0 || wall_s < best_wall_s) best_wall_s = wall_s;
  }

  const double events_per_sec =
      best_wall_s > 0.0 ? static_cast<double>(events) / best_wall_s : 0.0;
  const double rss_mb = peak_rss_mb();

  const std::string path = flags.get_string("out");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"serve\",\"events\":%llu,"
               "\"wall_s\":%.6f,\"events_per_sec\":%.0f,"
               "\"peak_rss_mb\":%.1f,\"jobs_fused\":%llu}\n",
               static_cast<unsigned long long>(events), best_wall_s,
               events_per_sec, rss_mb,
               static_cast<unsigned long long>(jobs_fused));
  std::fclose(out);
  std::printf("bench_serve: %llu events in %.3f s (%.0f events/s), "
              "%llu jobs fused, peak RSS %.1f MB -> %s\n",
              static_cast<unsigned long long>(events), best_wall_s,
              events_per_sec,
              static_cast<unsigned long long>(jobs_fused), rss_mb,
              path.c_str());
  return 0;
}
