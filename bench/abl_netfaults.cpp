// Ablation: hedged remote fetches vs. parked transfers under network
// partitions.
//
// Streams a Poisson burst of matmul jobs over a 3-node cluster, then for
// every node pair injects a mid-run partition window (which heals) and runs
// two arms on identical arrivals:
//   parked — fetch timeouts off: transfers caught by the partition park at
//            the wire until the window heals, stalled jobs back the
//            admission queue up, and the tail of the burst is shed;
//   hedged — fetch deadlines armed: a timed-out fetch is hedged to an
//            alternate holder (another node's host cache, warmed by earlier
//            jobs sharing the template data), so the partition is routed
//            around instead of waited out.
// The claims under test (--check):
//   * summed over the partition sweep, the hedged arm completes strictly
//     more jobs than the parked arm;
//   * every arm passes the InvariantChecker (partition windows really block
//     transfer starts, every timeout is eventually rerouted or served,
//     network bytes are conserved including wasted duplicate deliveries);
//   * fault-free runs are byte-identical with the hedging knobs on vs. off
//     (run-report string equality) — the machinery is free until a fault
//     actually fires.
//
//   ./abl_netfaults --gpus=6 --nodes=3 --rate=400 --num-jobs=80 --check
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/locality.hpp"
#include "common/figure_harness.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "workloads/matmul2d.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "Network-fault ablation: hedged remote fetches route around a "
      "partition that parks the no-hedging arm (sheds, timeouts, hedges)");
  bench::add_standard_flags(flags, /*default_gpus=*/6);
  flags.define_int("n", 8, "matmul template dimension (N)")
      .define_int("num-jobs", 80, "jobs in the burst")
      .define_double("rate", 400.0, "Poisson arrival rate (jobs/s)")
      .define_int("max-in-flight", 4,
                  "admission bound on concurrently in-flight jobs")
      .define_int("max-queue", 4,
                  "admission queue bound; jobs past it are shed")
      .define_double("partition-start-ms", 8.0,
                     "partition window opens at this simulated time")
      .define_double("partition-ms", 100.0, "partition window length")
      .define_double("timeout-factor", 6.0,
                     "hedged arm: fetch deadline as a multiple of the "
                     "modeled transfer time")
      .define_int("hedges", 2, "hedged arm: hedge cap per fetch")
      .define_bool("check", false,
                   "assert the headline claim: hedged completes strictly "
                   "more jobs than parked over the partition sweep, and "
                   "fault-free runs are byte-identical with the knobs on");
  if (!flags.parse(argc, argv)) return 0;

  auto config = bench::config_from_flags(
      flags, "abl_netfaults",
      "hedged remote fetches vs. parked transfers under partitions");
  // The hedging claim needs a third node to reroute through; default the
  // bare invocation to the 3-node split instead of erroring out.
  if (flags.get_int("nodes") == 1) config.platform.num_nodes = 3;
  if (config.platform.num_nodes < 3) {
    std::fprintf(stderr, "abl_netfaults needs --nodes >= 3\n");
    return 1;
  }

  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n"))}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("num-jobs"));
  std::vector<serve::JobSpec> jobs(num_jobs);

  util::CsvWriter csv(
      {"arm", "jobs_submitted", "jobs_completed", "jobs_shed",
       "throughput_jobs_per_s", "fetch_timeouts", "hedged_fetches",
       "hedges_wasted", "hedge_wasted_mb", "nodes_suspected",
       "suspicions_cleared"},
      config.output_path);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs over %u nodes; %u jobs at %g jobs/s, "
                "queue bound %lld",
                config.platform.num_gpus, config.platform.num_nodes, num_jobs,
                flags.get_double("rate"),
                static_cast<long long>(flags.get_int("max-queue")));
  csv.comment(line);

  struct ArmResult {
    serve::ServeResult result;
    sim::RunReport::NetworkFaults net;
    std::string report_json;
  };
  std::vector<sim::RunReport> reports;
  // One arm: a full streamed run under `plan` with the hedging knobs set.
  // `context` keys the run report; arms that must compare byte-identical
  // share one context string.
  auto run_arm = [&](const std::string& arm, const std::string& context,
                     const sim::FaultPlan& plan, double timeout_factor,
                     std::uint32_t hedges) {
    serve::ServeConfig serve_config;
    serve_config.arrival.mode = serve::ArrivalMode::kPoisson;
    serve_config.arrival.rate_jobs_per_s = flags.get_double("rate");
    serve_config.arrival.seed = config.seed;
    serve_config.admission.max_jobs_in_flight =
        static_cast<std::uint32_t>(flags.get_int("max-in-flight"));
    serve_config.admission.max_queue_depth =
        static_cast<std::uint32_t>(flags.get_int("max-queue"));
    serve_config.engine.seed = config.seed;
    serve_config.engine.fetch_timeout_factor = timeout_factor;
    serve_config.engine.max_fetch_hedges = hedges;

    cluster::LocalityScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, config.platform, scheduler,
                              serve_config);
    sim::FaultInjector injector(plan);
    if (!plan.empty()) engine.set_fault_injector(&injector);
    sim::InvariantChecker checker;
    engine.add_inspector(&checker);
    sim::RunReportCollector collector(
        {.context = context, .collect_trace = false});
    engine.add_inspector(&collector);

    ArmResult arm_result;
    try {
      arm_result.result = engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure("abl_netfaults " + arm, error);
    }
    if (!checker.ok()) {
      std::fprintf(stderr, "abl_netfaults %s: invariant violation\n%s\n%s\n",
                   arm.c_str(), checker.report().error.c_str(),
                   checker.report().excerpt.c_str());
      std::exit(1);
    }
    arm_result.net = collector.report().network_faults;
    arm_result.report_json = sim::run_report_to_json(collector.report());
    reports.push_back(collector.report());

    const sim::RunReport::Serving& serving = arm_result.result.serving;
    csv.row({arm, static_cast<std::int64_t>(serving.jobs_submitted),
             static_cast<std::int64_t>(serving.jobs_completed),
             static_cast<std::int64_t>(serving.jobs_shed),
             serving.throughput_jobs_per_s,
             static_cast<std::int64_t>(arm_result.net.fetch_timeouts),
             static_cast<std::int64_t>(arm_result.net.hedged_fetches),
             static_cast<std::int64_t>(arm_result.net.hedges_wasted),
             static_cast<double>(arm_result.net.hedge_wasted_bytes) / 1e6,
             static_cast<std::int64_t>(arm_result.net.nodes_suspected),
             static_cast<std::int64_t>(arm_result.net.suspicions_cleared)});
    return arm_result;
  };

  const double timeout_factor = flags.get_double("timeout-factor");
  const auto hedge_cap = static_cast<std::uint32_t>(flags.get_int("hedges"));

  // Fault-free pair: the hedging knobs must be free until a fault fires.
  // Same context string, so any divergence is behavioral, not labeling.
  const sim::FaultPlan no_faults;
  const ArmResult base_off =
      run_arm("fault-free-off", "abl_netfaults fault-free", no_faults, 0.0, 0);
  const ArmResult base_on =
      run_arm("fault-free-hedged", "abl_netfaults fault-free", no_faults,
              timeout_factor, hedge_cap);

  // Partition sweep: one healing window per node pair, parked vs. hedged.
  const double part_start_us = flags.get_double("partition-start-ms") * 1e3;
  const double part_end_us =
      part_start_us + flags.get_double("partition-ms") * 1e3;
  std::uint64_t parked_total = 0;
  std::uint64_t hedged_total = 0;
  std::uint64_t hedged_fetches = 0;
  for (std::uint32_t src = 0; src < config.platform.num_nodes; ++src) {
    for (std::uint32_t dst = src + 1; dst < config.platform.num_nodes; ++dst) {
      sim::FaultPlan plan;
      plan.link_faults.push_back({.src = src,
                                  .dst = dst,
                                  .start_us = part_start_us,
                                  .end_us = part_end_us,
                                  .partition = true});
      const std::string pair =
          std::to_string(src) + "-" + std::to_string(dst);
      const ArmResult parked =
          run_arm("parked-" + pair, "abl_netfaults parked " + pair, plan, 0.0,
                  0);
      const ArmResult hedged =
          run_arm("hedged-" + pair, "abl_netfaults hedged " + pair, plan,
                  timeout_factor, hedge_cap);
      parked_total += parked.result.serving.jobs_completed;
      hedged_total += hedged.result.serving.jobs_completed;
      hedged_fetches += hedged.net.hedged_fetches;
    }
  }

  if (!config.run_report_path.empty() &&
      !sim::write_run_reports(reports, "abl_netfaults",
                              config.run_report_path)) {
    std::fprintf(stderr, "failed to write run report to %s\n",
                 config.run_report_path.c_str());
    return 1;
  }

  if (flags.get_bool("check")) {
    bool ok = true;
    if (base_on.report_json != base_off.report_json) {
      std::fprintf(stderr,
                   "CLAIM FAILED: fault-free run reports diverge with the "
                   "hedging knobs on — the machinery must be byte-free "
                   "until a fault fires\n");
      ok = false;
    }
    if (base_off.net.enabled || base_on.net.fetch_timeouts != 0) {
      std::fprintf(stderr,
                   "CLAIM FAILED: fault-free arms reported network-fault "
                   "activity\n");
      ok = false;
    }
    if (hedged_total <= parked_total) {
      std::fprintf(stderr,
                   "CLAIM FAILED: hedged completed %llu jobs over the "
                   "partition sweep, parked %llu (expected strictly more)\n",
                   static_cast<unsigned long long>(hedged_total),
                   static_cast<unsigned long long>(parked_total));
      ok = false;
    }
    if (hedged_fetches == 0) {
      std::fprintf(stderr,
                   "CLAIM FAILED: the hedged arms never hedged a fetch\n");
      ok = false;
    }
    if (!ok) return 1;
    std::printf("claim OK: hedged %llu > parked %llu jobs over the "
                "partition sweep (%llu hedges), fault-free runs "
                "byte-identical\n",
                static_cast<unsigned long long>(hedged_total),
                static_cast<unsigned long long>(parked_total),
                static_cast<unsigned long long>(hedged_fetches));
  }
  return 0;
}
