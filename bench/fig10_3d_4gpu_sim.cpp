// Figure 10: 3D matrix multiplication on 4 V100s in simulation, adding the
// DARTS+LUF-3inputs variant: when no single load frees a task, pick the
// data that brings the most tasks within one further load.
#include "common/figure_harness.hpp"
#include "workloads/matmul3d.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 10: 3D matmul, 4 GPUs, simulation");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig10", "3D matmul on 4 V100s, simulation, performance");
  const bool full = flags.get_bool("full");

  // Working set = 2 N^2 * 14 MB; the paper sweeps up to ~50 000 MB (N=42).
  std::vector<std::uint32_t> ns = full
      ? std::vector<std::uint32_t>{4, 6, 8, 10, 12, 15, 18, 21, 25, 30, 36, 42}
      : std::vector<std::uint32_t>{4, 6, 8, 10, 12, 14, 16};
  std::vector<bench::WorkloadPoint> points;
  for (std::uint32_t n : ns) {
    points.push_back(bench::WorkloadPoint{
        static_cast<double>(work::matmul_3d_working_set(n)) / 1e6,
        [n] { return work::make_matmul_3d({.n = n}); }});
  }

  bench::run_figure(
      config, points,
      {bench::eager_spec(),
       bench::dmdar_spec(),
       bench::darts_spec({.use_luf = true}),
       bench::darts_spec({.use_luf = true, .three_inputs = true}),
       bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
