// Figure 9: 2D matmul with *randomized submission order* on 2 V100s —
// stresses how much each scheduler relies on a friendly natural order.
// EAGER, DMDAR and hMETIS+R degrade as soon as both matrices stop fitting;
// DARTS+LUF is essentially order-independent.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 9: randomized 2D matmul, 2 GPUs");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  flags.define_int("order-seed", 1, "seed of the submission-order shuffle");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig09", "2D matmul, randomized submission order, 2 V100s");
  const bool full = flags.get_bool("full");
  const double max_ws = full ? 1700.0 : 1700.0;
  const auto points = bench::matmul2d_points(
      bench::matmul2d_ns(max_ws, full), /*randomize=*/true,
      static_cast<std::uint64_t>(flags.get_int("order-seed")));

  bench::run_figure(
      config, points,
      {bench::eager_spec(),
       bench::dmdar_spec(),
       bench::darts_spec({.use_luf = false}, /*with_sched_time=*/true),
       bench::darts_spec({.use_luf = true}, /*with_sched_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
