#include "common/figure_harness.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "analysis/bounds.hpp"
#include "analysis/trace_export.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace mg::bench {

SchedulerSpec eager_spec() {
  return {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }};
}

SchedulerSpec dmdar_spec() {
  return {"DMDAR", [] { return std::make_unique<sched::DmdaScheduler>(); }};
}

SchedulerSpec hmetis_spec(bool with_partition_time,
                          double max_working_set_mb) {
  SchedulerSpec spec;
  spec.label = with_partition_time ? "hMETIS+R" : "hMETIS+R no part. time";
  spec.factory = [] { return std::make_unique<sched::HmetisScheduler>(); };
  spec.account_sched_cost = with_partition_time;
  spec.max_working_set_mb = max_working_set_mb;
  return spec;
}

SchedulerSpec mhfp_spec(bool with_sched_time, double max_working_set_mb) {
  SchedulerSpec spec;
  spec.label = with_sched_time ? "mHFP" : "mHFP no sched. time";
  spec.factory = [] { return std::make_unique<sched::HfpScheduler>(); };
  spec.account_sched_cost = with_sched_time;
  spec.max_working_set_mb = max_working_set_mb;
  return spec;
}

SchedulerSpec darts_spec(const core::DartsOptions& options,
                         bool with_sched_time) {
  SchedulerSpec spec;
  spec.label = core::darts_variant_name(options);
  spec.factory = [options] {
    return std::make_unique<core::DartsScheduler>(options);
  };
  spec.account_sched_cost = with_sched_time;
  return spec;
}

void run_figure(const FigureConfig& config,
                const std::vector<WorkloadPoint>& points,
                const std::vector<SchedulerSpec>& schedulers) {
  util::CsvWriter csv(
      {"working_set_mb", "scheduler", "gflops", "transfers_mb", "loads",
       "evictions", "makespan_ms", "sched_prepare_ms", "sched_pop_ms"},
      config.output_path);
  csv.comment(config.figure + ": " + config.title);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs x %.0f MB, %.0f GFlop/s each, %.1f GB/s bus",
                config.platform.num_gpus,
                static_cast<double>(config.platform.gpu_memory_bytes) / 1e6,
                config.platform.gpu_gflops,
                config.platform.bus_bandwidth_bytes_per_s / 1e9);
  csv.comment(line);
  std::snprintf(line, sizeof line, "gflops_max: %.0f",
                analysis::gflops_max(config.platform));
  csv.comment(line);
  std::snprintf(line, sizeof line,
                "threshold_both_fit_mb: %.0f threshold_one_fits_mb: %.0f",
                static_cast<double>(
                    analysis::threshold_both_matrices_fit(config.platform)) /
                    1e6,
                static_cast<double>(
                    analysis::threshold_one_matrix_fits(config.platform)) /
                    1e6);
  csv.comment(line);

  // Per-point results, computed possibly in parallel, emitted in order.
  struct PointResult {
    std::string comment;
    std::vector<std::vector<util::CsvCell>> rows;
    std::vector<sim::RunReport> reports;
  };
  std::vector<PointResult> results(points.size());

  // The Chrome trace captures one run: the sweep's last (point, scheduler)
  // combination that is not skipped by a working-set bound.
  constexpr std::size_t kNone = ~std::size_t{0};
  std::size_t trace_point = kNone;
  std::size_t trace_spec = kNone;
  if (!config.chrome_trace_path.empty()) {
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      for (std::size_t si = 0; si < schedulers.size(); ++si) {
        if (points[pi].working_set_mb <= schedulers[si].max_working_set_mb &&
            points[pi].working_set_mb >= schedulers[si].min_working_set_mb) {
          trace_point = pi;
          trace_spec = si;
        }
      }
    }
  }

  // Engine failures (deadlock, budget, fault-plan rejection) from possibly
  // parallel sweep workers: remember the first, report after the join.
  std::atomic<bool> engine_failed{false};
  std::mutex failure_mutex;
  std::string failure_message;

  auto run_point = [&](std::size_t index) {
    const WorkloadPoint& point = points[index];
    PointResult& result = results[index];
    const core::TaskGraph graph = point.make();
    char point_line[160];
    std::snprintf(point_line, sizeof point_line,
                  "point ws=%.0fMB tasks=%u data=%u pci_limit_mb=%.0f",
                  point.working_set_mb, graph.num_tasks(), graph.num_data(),
                  analysis::pci_limit_bytes(graph, config.platform) / 1e6);
    result.comment = point_line;

    for (std::size_t spec_index = 0; spec_index < schedulers.size();
         ++spec_index) {
      const SchedulerSpec& spec = schedulers[spec_index];
      if (point.working_set_mb > spec.max_working_set_mb ||
          point.working_set_mb < spec.min_working_set_mb) {
        continue;
      }
      const bool wants_trace =
          index == trace_point && spec_index == trace_spec;

      double gflops = 0.0;
      double transfers_mb = 0.0;
      double loads = 0.0;
      double evictions = 0.0;
      double makespan_ms = 0.0;
      double prepare_ms = 0.0;
      double pop_ms = 0.0;
      const std::uint32_t reps = std::max(1u, config.repetitions);
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        auto scheduler = spec.factory();
        sim::EngineConfig engine_config;
        engine_config.seed = config.seed + rep;
        engine_config.account_scheduler_cost = spec.account_sched_cost;
        engine_config.hints_may_evict = spec.hints_may_evict;
        engine_config.checkpoint_interval_us = config.checkpoint_interval_us;
        engine_config.checkpoint_fraction = config.checkpoint_fraction;
        engine_config.replicate_hot = config.replicate_hot;
        sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                  engine_config);
        std::unique_ptr<sim::FaultInjector> injector;
        if (!config.fault_plan.empty()) {
          injector = std::make_unique<sim::FaultInjector>(config.fault_plan);
          engine.set_fault_injector(injector.get());
        }
        // Observability rides on the first repetition only: one report per
        // (point, scheduler) row, one Chrome trace per sweep.
        const bool observe =
            rep == 0 && (!config.run_report_path.empty() || wants_trace);
        std::unique_ptr<sim::RunReportCollector> collector;
        if (observe) {
          sim::RunReportCollector::Options collector_options;
          char context[96];
          std::snprintf(context, sizeof context, "%s ws=%gMB",
                        config.figure.c_str(), point.working_set_mb);
          collector_options.context = context;
          collector_options.collect_trace = wants_trace;
          collector = std::make_unique<sim::RunReportCollector>(
              std::move(collector_options));
          engine.add_inspector(collector.get());
        }
        core::RunMetrics metrics;
        try {
          metrics = engine.run();
        } catch (const sim::EngineError& error) {
          if (!engine_failed.exchange(true)) {
            const std::lock_guard<std::mutex> lock(failure_mutex);
            failure_message = std::string(spec.label) + " at ws=" +
                              std::to_string(point.working_set_mb) + "MB: " +
                              error.what();
          }
          return;  // abandon this point; the sweep exits after the join
        }
        if (observe) {
          if (!config.run_report_path.empty()) {
            result.reports.push_back(collector->report());
          }
          if (wants_trace &&
              !analysis::export_chrome_trace(graph, config.platform,
                                             collector->trace(),
                                             config.chrome_trace_path)) {
            std::fprintf(stderr, "failed to write chrome trace to %s\n",
                         config.chrome_trace_path.c_str());
          }
        }
        gflops += metrics.achieved_gflops();
        transfers_mb += metrics.transfers_mb();
        loads += static_cast<double>(metrics.total_loads());
        evictions += static_cast<double>(metrics.total_evictions());
        makespan_ms += metrics.wall_makespan_us() / 1e3;
        prepare_ms += metrics.scheduler_prepare_us / 1e3;
        pop_ms += metrics.scheduler_pop_us / 1e3;
      }
      const double inv = 1.0 / static_cast<double>(reps);
      result.rows.push_back({point.working_set_mb, spec.label, gflops * inv,
                             transfers_mb * inv, loads * inv, evictions * inv,
                             makespan_ms * inv, prepare_ms * inv,
                             pop_ms * inv});
    }
  };

  // Wall-clock scheduler-cost measurements need an unloaded machine: only
  // parallelize the sweep when no curve charges scheduler time.
  const bool any_cost_accounted =
      std::any_of(schedulers.begin(), schedulers.end(),
                  [](const SchedulerSpec& spec) {
                    return spec.account_sched_cost;
                  });
  if (config.jobs > 1 && !any_cost_accounted) {
    util::ThreadPool pool(config.jobs);
    pool.parallel_for(points.size(), run_point);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  }

  if (engine_failed.load()) {
    std::fprintf(stderr, "engine failure: %s\n", failure_message.c_str());
    std::exit(3);
  }

  for (const PointResult& result : results) {
    csv.comment(result.comment);
    for (const auto& row : result.rows) csv.row(row);
  }

  if (!config.run_report_path.empty()) {
    std::vector<sim::RunReport> reports;
    for (PointResult& result : results) {
      for (sim::RunReport& report : result.reports) {
        reports.push_back(std::move(report));
      }
    }
    if (!sim::write_run_reports(reports, config.figure + ": " + config.title,
                                config.run_report_path)) {
      std::fprintf(stderr, "failed to write run report to %s\n",
                   config.run_report_path.c_str());
    }
  }
}

RunObserver::RunObserver(const FigureConfig& config)
    : figure_(config.figure),
      title_(config.title),
      run_report_path_(config.run_report_path),
      chrome_trace_path_(config.chrome_trace_path) {}

RunObserver::~RunObserver() { flush(); }

core::RunMetrics RunObserver::run(sim::RuntimeEngine& engine,
                                  const core::TaskGraph& graph,
                                  const std::string& label) {
  if (run_report_path_.empty() && chrome_trace_path_.empty()) {
    return sim::run_engine_or_exit(engine, label);
  }
  sim::RunReportCollector::Options options;
  options.context = figure_ + " " + label;
  options.collect_trace = !chrome_trace_path_.empty();
  sim::RunReportCollector collector(std::move(options));
  engine.add_inspector(&collector);
  core::RunMetrics metrics = sim::run_engine_or_exit(engine, label);
  if (!run_report_path_.empty()) reports_.push_back(collector.report());
  // Rewritten per observed run: the last run wins, like run_figure.
  if (!chrome_trace_path_.empty() &&
      !analysis::export_chrome_trace(graph, engine.platform(),
                                     collector.trace(), chrome_trace_path_)) {
    std::fprintf(stderr, "failed to write chrome trace to %s\n",
                 chrome_trace_path_.c_str());
  }
  return metrics;
}

void RunObserver::flush() {
  if (flushed_ || run_report_path_.empty()) return;
  flushed_ = true;
  if (!write_run_reports(reports_, figure_ + ": " + title_,
                         run_report_path_)) {
    std::fprintf(stderr, "failed to write run report to %s\n",
                 run_report_path_.c_str());
  }
}

void add_standard_flags(util::Flags& flags, std::uint32_t default_gpus,
                        std::int64_t default_mem_mb) {
  flags.define_int("gpus", default_gpus, "number of GPUs (K)")
      .define_int("mem-mb", default_mem_mb, "usable GPU memory in MB")
      .define_int("reps", 1, "repetitions averaged per point")
      .define_int("seed", 42, "base RNG seed")
      .define_string("out", "", "CSV output path (default: stdout)")
      .define_bool("full", false,
                   "sweep the paper's full working-set range (slower)")
      .define_int("jobs", 1,
                  "worker threads for the sweep (only used when no curve "
                  "charges scheduler wall time)")
      .define_string("run-report", "",
                     "write a JSON run report (one entry per point/scheduler "
                     "run) to this path")
      .define_string("chrome-trace", "",
                     "write a chrome://tracing timeline of the last run to "
                     "this path")
      .define_string("fault-plan", "",
                     "JSON fault plan injected into every run "
                     "(docs/ROBUSTNESS.md)")
      .define_double("checkpoint-interval", 0.0,
                     "checkpoint task progress every N simulated us of "
                     "compute (0 = off)")
      .define_double("checkpoint-fraction", 0.0,
                     "checkpoint task progress every given fraction of each "
                     "task (0 = off; ignored when --checkpoint-interval is "
                     "set)")
      .define_bool("replicate-hot", false,
                   "keep a second replica of hot shared data on another GPU "
                   "while the fault plan threatens GPU losses")
      .define_int("nodes", 1,
                  "cluster nodes the GPUs are split across (1 = the paper's "
                  "single-node platform)")
      .define_double("net-bandwidth", 12.5,
                     "inter-node network bandwidth in GB/s (used when "
                     "--nodes > 1)")
      .define_double("net-latency", 25.0,
                     "inter-node network latency in us (used when "
                     "--nodes > 1)")
      .define_int("host-mem-mb", 0,
                  "per-node host cache of remote data in MB (0 = unbounded; "
                  "used when --nodes > 1)");
}

FigureConfig config_from_flags(const util::Flags& flags, std::string figure,
                               std::string title) {
  FigureConfig config;
  config.figure = std::move(figure);
  config.title = std::move(title);
  config.platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")),
      static_cast<std::uint64_t>(flags.get_int("mem-mb")) * core::kMB);
  config.platform.num_nodes =
      static_cast<std::uint32_t>(flags.get_int("nodes"));
  config.platform.net_bandwidth_bytes_per_s =
      flags.get_double("net-bandwidth") * 1e9;
  config.platform.net_latency_us = flags.get_double("net-latency");
  config.platform.host_memory_bytes =
      static_cast<std::uint64_t>(flags.get_int("host-mem-mb")) * core::kMB;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.repetitions = static_cast<std::uint32_t>(flags.get_int("reps"));
  config.output_path = flags.get_string("out");
  config.jobs = static_cast<std::uint32_t>(flags.get_int("jobs"));
  config.run_report_path = flags.get_string("run-report");
  config.chrome_trace_path = flags.get_string("chrome-trace");
  const std::string fault_plan_path = flags.get_string("fault-plan");
  if (!fault_plan_path.empty()) {
    std::string error;
    auto plan = sim::load_fault_plan_file(fault_plan_path, &error);
    if (!plan) {
      std::fprintf(stderr, "--fault-plan %s: %s\n", fault_plan_path.c_str(),
                   error.c_str());
      std::exit(2);
    }
    config.fault_plan = std::move(*plan);
  }
  config.checkpoint_interval_us = flags.get_double("checkpoint-interval");
  config.checkpoint_fraction = flags.get_double("checkpoint-fraction");
  config.replicate_hot = flags.get_bool("replicate-hot");
  return config;
}

}  // namespace mg::bench
