#include "common/figure_harness.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/bounds.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace mg::bench {

SchedulerSpec eager_spec() {
  return {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }};
}

SchedulerSpec dmdar_spec() {
  return {"DMDAR", [] { return std::make_unique<sched::DmdaScheduler>(); }};
}

SchedulerSpec hmetis_spec(bool with_partition_time,
                          double max_working_set_mb) {
  SchedulerSpec spec;
  spec.label = with_partition_time ? "hMETIS+R" : "hMETIS+R no part. time";
  spec.factory = [] { return std::make_unique<sched::HmetisScheduler>(); };
  spec.account_sched_cost = with_partition_time;
  spec.max_working_set_mb = max_working_set_mb;
  return spec;
}

SchedulerSpec mhfp_spec(bool with_sched_time, double max_working_set_mb) {
  SchedulerSpec spec;
  spec.label = with_sched_time ? "mHFP" : "mHFP no sched. time";
  spec.factory = [] { return std::make_unique<sched::HfpScheduler>(); };
  spec.account_sched_cost = with_sched_time;
  spec.max_working_set_mb = max_working_set_mb;
  return spec;
}

SchedulerSpec darts_spec(const core::DartsOptions& options,
                         bool with_sched_time) {
  SchedulerSpec spec;
  spec.label = core::darts_variant_name(options);
  spec.factory = [options] {
    return std::make_unique<core::DartsScheduler>(options);
  };
  spec.account_sched_cost = with_sched_time;
  return spec;
}

void run_figure(const FigureConfig& config,
                const std::vector<WorkloadPoint>& points,
                const std::vector<SchedulerSpec>& schedulers) {
  util::CsvWriter csv(
      {"working_set_mb", "scheduler", "gflops", "transfers_mb", "loads",
       "evictions", "makespan_ms", "sched_prepare_ms", "sched_pop_ms"},
      config.output_path);
  csv.comment(config.figure + ": " + config.title);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs x %.0f MB, %.0f GFlop/s each, %.1f GB/s bus",
                config.platform.num_gpus,
                static_cast<double>(config.platform.gpu_memory_bytes) / 1e6,
                config.platform.gpu_gflops,
                config.platform.bus_bandwidth_bytes_per_s / 1e9);
  csv.comment(line);
  std::snprintf(line, sizeof line, "gflops_max: %.0f",
                analysis::gflops_max(config.platform));
  csv.comment(line);
  std::snprintf(line, sizeof line,
                "threshold_both_fit_mb: %.0f threshold_one_fits_mb: %.0f",
                static_cast<double>(
                    analysis::threshold_both_matrices_fit(config.platform)) /
                    1e6,
                static_cast<double>(
                    analysis::threshold_one_matrix_fits(config.platform)) /
                    1e6);
  csv.comment(line);

  // Per-point results, computed possibly in parallel, emitted in order.
  struct PointResult {
    std::string comment;
    std::vector<std::vector<util::CsvCell>> rows;
  };
  std::vector<PointResult> results(points.size());

  auto run_point = [&](std::size_t index) {
    const WorkloadPoint& point = points[index];
    PointResult& result = results[index];
    const core::TaskGraph graph = point.make();
    char point_line[160];
    std::snprintf(point_line, sizeof point_line,
                  "point ws=%.0fMB tasks=%u data=%u pci_limit_mb=%.0f",
                  point.working_set_mb, graph.num_tasks(), graph.num_data(),
                  analysis::pci_limit_bytes(graph, config.platform) / 1e6);
    result.comment = point_line;

    for (const SchedulerSpec& spec : schedulers) {
      if (point.working_set_mb > spec.max_working_set_mb ||
          point.working_set_mb < spec.min_working_set_mb) {
        continue;
      }

      double gflops = 0.0;
      double transfers_mb = 0.0;
      double loads = 0.0;
      double evictions = 0.0;
      double makespan_ms = 0.0;
      double prepare_ms = 0.0;
      double pop_ms = 0.0;
      const std::uint32_t reps = std::max(1u, config.repetitions);
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        auto scheduler = spec.factory();
        sim::EngineConfig engine_config;
        engine_config.seed = config.seed + rep;
        engine_config.account_scheduler_cost = spec.account_sched_cost;
        engine_config.hints_may_evict = spec.hints_may_evict;
        sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                  engine_config);
        const core::RunMetrics metrics = engine.run();
        gflops += metrics.achieved_gflops();
        transfers_mb += metrics.transfers_mb();
        loads += static_cast<double>(metrics.total_loads());
        evictions += static_cast<double>(metrics.total_evictions());
        makespan_ms += metrics.wall_makespan_us() / 1e3;
        prepare_ms += metrics.scheduler_prepare_us / 1e3;
        pop_ms += metrics.scheduler_pop_us / 1e3;
      }
      const double inv = 1.0 / static_cast<double>(reps);
      result.rows.push_back({point.working_set_mb, spec.label, gflops * inv,
                             transfers_mb * inv, loads * inv, evictions * inv,
                             makespan_ms * inv, prepare_ms * inv,
                             pop_ms * inv});
    }
  };

  // Wall-clock scheduler-cost measurements need an unloaded machine: only
  // parallelize the sweep when no curve charges scheduler time.
  const bool any_cost_accounted =
      std::any_of(schedulers.begin(), schedulers.end(),
                  [](const SchedulerSpec& spec) {
                    return spec.account_sched_cost;
                  });
  if (config.jobs > 1 && !any_cost_accounted) {
    util::ThreadPool pool(config.jobs);
    pool.parallel_for(points.size(), run_point);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  }

  for (const PointResult& result : results) {
    csv.comment(result.comment);
    for (const auto& row : result.rows) csv.row(row);
  }
}

void add_standard_flags(util::Flags& flags, std::uint32_t default_gpus,
                        std::int64_t default_mem_mb) {
  flags.define_int("gpus", default_gpus, "number of GPUs (K)")
      .define_int("mem-mb", default_mem_mb, "usable GPU memory in MB")
      .define_int("reps", 1, "repetitions averaged per point")
      .define_int("seed", 42, "base RNG seed")
      .define_string("out", "", "CSV output path (default: stdout)")
      .define_bool("full", false,
                   "sweep the paper's full working-set range (slower)")
      .define_int("jobs", 1,
                  "worker threads for the sweep (only used when no curve "
                  "charges scheduler wall time)");
}

FigureConfig config_from_flags(const util::Flags& flags, std::string figure,
                               std::string title) {
  FigureConfig config;
  config.figure = std::move(figure);
  config.title = std::move(title);
  config.platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")),
      static_cast<std::uint64_t>(flags.get_int("mem-mb")) * core::kMB);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.repetitions = static_cast<std::uint32_t>(flags.get_int("reps"));
  config.output_path = flags.get_string("out");
  config.jobs = static_cast<std::uint32_t>(flags.get_int("jobs"));
  return config;
}

}  // namespace mg::bench
