// Shared driver for the figure-reproduction harnesses (bench/fig*.cpp).
//
// A figure is a sweep: for each working-set point, generate the workload,
// run every scheduler spec through the simulator, and emit one CSV row per
// (point, scheduler) with the quantities the paper plots — GFlop/s and MB
// transferred — plus diagnostics and the figure's reference lines.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/darts.hpp"
#include "core/metrics.hpp"
#include "core/platform.hpp"
#include "core/scheduler.hpp"
#include "core/task_graph.hpp"
#include "sim/fault_plan.hpp"
#include "sim/run_report.hpp"
#include "util/flags.hpp"

namespace mg::sim {
class RuntimeEngine;
}

namespace mg::bench {

struct SchedulerSpec {
  std::string label;  ///< curve name, matching the paper's legend
  std::function<std::unique_ptr<core::Scheduler>()> factory;

  /// Charge measured scheduler wall time into the timeline ("real" curves;
  /// the paper's "no sched. time" / "no part. time" variants set false).
  bool account_sched_cost = false;

  /// Skip working sets larger than this (mHFP's packing time is deliberately
  /// faithful to the paper and becomes prohibitive at scale, exactly as in
  /// Figures 3/5).
  double max_working_set_mb = std::numeric_limits<double>::infinity();

  /// Skip working sets smaller than this (the paper enables the DARTS scan
  /// threshold only beyond 3500 MB, Figure 8).
  double min_working_set_mb = 0.0;

  /// Let this curve's push-time prefetch hints evict (StarPU's eager
  /// prefetch allocation; see EngineConfig::hints_may_evict).
  bool hints_may_evict = false;
};

// Standard curve factories.
SchedulerSpec eager_spec();
SchedulerSpec dmdar_spec();
SchedulerSpec hmetis_spec(bool with_partition_time,
                          double max_working_set_mb =
                              std::numeric_limits<double>::infinity());
SchedulerSpec mhfp_spec(bool with_sched_time, double max_working_set_mb);
SchedulerSpec darts_spec(const core::DartsOptions& options,
                         bool with_sched_time = false);

struct WorkloadPoint {
  double working_set_mb;                      ///< x axis
  std::function<core::TaskGraph()> make;      ///< lazy workload generation
};

struct FigureConfig {
  std::string figure;  ///< e.g. "fig03"
  std::string title;   ///< printed as a CSV comment
  core::Platform platform;
  std::uint64_t seed = 42;
  std::uint32_t repetitions = 1;  ///< averaged (seeds vary per repetition)
  std::string output_path;        ///< empty = stdout

  /// Worker threads for the sweep (rows stay in deterministic order).
  /// Parallel execution is only used when no scheduler spec charges
  /// wall-clock cost — timing measurements need an unloaded machine.
  std::uint32_t jobs = 1;

  /// When non-empty, attach a sim::RunReportCollector to the first
  /// repetition of every (point, scheduler) run and write all reports as
  /// one JSON document (docs/OBSERVABILITY.md) to this path.
  std::string run_report_path;

  /// When non-empty, write the Chrome-tracing timeline of the sweep's last
  /// (point, scheduler) run to this path.
  std::string chrome_trace_path;

  /// Fault plan injected into every run (docs/ROBUSTNESS.md); empty = no
  /// fault machinery at all. Loaded from --fault-plan.
  sim::FaultPlan fault_plan;

  /// Proactive fault tolerance (docs/ROBUSTNESS.md). Forwarded into every
  /// EngineConfig: checkpoint snapshots every `checkpoint_interval_us` of
  /// simulated compute (or every `checkpoint_fraction` of each task), and
  /// `replicate_hot` keeps a second copy of hot shared data on another GPU
  /// while a fault plan threatens GPU losses.
  double checkpoint_interval_us = 0.0;
  double checkpoint_fraction = 0.0;
  bool replicate_hot = false;
};

/// Runs the sweep and writes the CSV. Columns:
///   working_set_mb, scheduler, gflops, transfers_mb, loads, evictions,
///   makespan_ms, sched_prepare_ms, sched_pop_ms
void run_figure(const FigureConfig& config,
                const std::vector<WorkloadPoint>& points,
                const std::vector<SchedulerSpec>& schedulers);

/// Observability for binaries with bespoke sweep loops (the abl_* harnesses
/// that cannot express their runs as run_figure points): wraps each engine
/// run with a sim::RunReportCollector when --run-report / --chrome-trace
/// are set, and writes the collected documents on flush (or destruction).
/// run_figure-based binaries get the same behaviour built in.
class RunObserver {
 public:
  explicit RunObserver(const FigureConfig& config);
  ~RunObserver();

  /// Runs `engine` to completion; when observability is enabled, collects a
  /// report labelled `label` and (re)writes the Chrome trace, so the last
  /// observed run wins — matching run_figure's last-run semantics.
  core::RunMetrics run(sim::RuntimeEngine& engine,
                       const core::TaskGraph& graph, const std::string& label);

  /// Writes the run-report document if any reports were collected.
  void flush();

 private:
  std::string figure_;
  std::string title_;
  std::string run_report_path_;
  std::string chrome_trace_path_;
  std::vector<sim::RunReport> reports_;
  bool flushed_ = false;
};

/// Registers the standard figure flags (--gpus, --mem-mb, --reps, --seed,
/// --out, --full, --jobs, --run-report, --chrome-trace, --fault-plan,
/// --checkpoint-interval, --checkpoint-fraction, --replicate-hot, --nodes,
/// --net-bandwidth, --net-latency, --host-mem-mb) on `flags`.
void add_standard_flags(util::Flags& flags, std::uint32_t default_gpus,
                        std::int64_t default_mem_mb = 500);

/// Builds a FigureConfig from parsed standard flags.
FigureConfig config_from_flags(const util::Flags& flags, std::string figure,
                               std::string title);

}  // namespace mg::bench
