// Ablation: task stealing on/off for the statically-partitioned schedulers
// (mHFP, hMETIS+R) on 4 GPUs. Stealing is step 5/8 of Algorithms 3/4; this
// quantifies how much of their multi-GPU performance it accounts for.
#include <memory>

#include "common/figure_harness.hpp"
#include "matmul_points.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Stealing ablation: mHFP / hMETIS+R with and without");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_stealing", "task-stealing ablation on 2D matmul");
  const bool full = flags.get_bool("full");
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(full ? 3000.0 : 2000.0, full));

  auto hmetis = [](bool stealing) {
    bench::SchedulerSpec spec;
    spec.label = stealing ? "hMETIS+R (steal)" : "hMETIS+R (no steal)";
    spec.factory = [stealing] {
      return std::make_unique<sched::HmetisScheduler>(stealing);
    };
    return spec;
  };
  auto mhfp = [](bool stealing) {
    bench::SchedulerSpec spec;
    spec.label = stealing ? "mHFP (steal)" : "mHFP (no steal)";
    spec.factory = [stealing] {
      return std::make_unique<sched::HfpScheduler>(stealing);
    };
    spec.max_working_set_mb = 1700.0;
    return spec;
  };

  bench::run_figure(config, points,
                    {hmetis(true), hmetis(false), mhfp(true), mhfp(false)});
  return 0;
}
