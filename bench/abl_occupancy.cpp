// Ablation: occupancy-aware GPU sharing vs. exclusive ownership.
//
// Streams a Poisson burst of small matmul jobs (each task declares the warp
// footprint of its 960x960 output tile — 900 warps, under a fifth of a
// V100) through the serving loop, sweeping the sharing admission threshold
// against memory pressure. threshold 0 is the paper's exclusive-ownership
// model; positive thresholds let the occupancy governor co-schedule several
// kernels per GPU under the warp budget, paying the engine's contention
// slowdown only past full occupancy.
// The claim under test (--check): on a small-task stream with memory to
// spare — the first --mem-mbs point — some sharing threshold beats
// exclusive ownership on throughput while the InvariantChecker reports
// zero warp-budget or residency violations, and the schema-v8 occupancy
// section is populated (co-run pairs observed, budget respected). The
// remaining memory points sweep into pressure, where co-runners' combined
// working sets overflow M and sharing crosses back below exclusive (the
// co-scheduled loads column shows the thrash); those points are checked
// for violations only and the crossover is reported, not asserted away.
//
//   ./abl_occupancy --gpus=2 --rate=300 --num-jobs=40 --check
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/figure_harness.hpp"
#include "sched/dmda.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "workloads/matmul2d.hpp"

namespace {

std::vector<double> parse_list(const std::string& spec) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) values.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "Occupancy ablation: GPU-sharing admission threshold x memory "
      "pressure on a small-task serving stream (DMDAR)");
  bench::add_standard_flags(flags, /*default_gpus=*/2,
                            /*default_mem_mb=*/150);
  flags.define_int("n", 6, "matmul template dimension (N)")
      .define_int("num-jobs", 40, "jobs in the burst")
      .define_double("rate", 300.0, "Poisson arrival rate (jobs/s)")
      .define_int("max-in-flight", 12,
                  "admission bound on concurrently in-flight jobs")
      .define_string("thresholds", "0,0.75,1.0,1.25",
                     "comma-separated sharing thresholds (0 = exclusive)")
      .define_string("mem-mbs", "150,60",
                     "comma-separated per-GPU memory points (MB)")
      .define_int("warps", 0,
                  "explicit warp footprint per task (0 = derive from the "
                  "matmul tile geometry)")
      .define_bool("check", false,
                   "assert the headline claim: at the first (ample) memory "
                   "point some sharing threshold beats exclusive throughput "
                   "with zero invariant violations and a populated "
                   "schema-v8 occupancy section");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_occupancy",
      "occupancy-aware GPU sharing vs. exclusive ownership");

  const std::vector<double> thresholds =
      parse_list(flags.get_string("thresholds"));
  const std::vector<double> mem_mbs = parse_list(flags.get_string("mem-mbs"));
  if (thresholds.empty() || mem_mbs.empty()) {
    std::fprintf(stderr, "--thresholds / --mem-mbs must be non-empty\n");
    return 1;
  }

  // Every task always carries its derived footprint — threshold 0 simply
  // never consults it, which is exactly the byte-identity contract.
  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n")),
       .derive_warps = true}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("num-jobs"));
  std::vector<serve::JobSpec> jobs(num_jobs);
  for (serve::JobSpec& job : jobs) {
    job.warps = static_cast<std::uint32_t>(flags.get_int("warps"));
  }

  util::CsvWriter csv(
      {"mem_mb", "threshold", "throughput_jobs_per_s", "p50_ms", "p99_ms",
       "jobs_shed", "loads", "transfers_mb", "mean_occupancy", "peak_warps",
       "admissions", "rejections", "co_run_pairs"},
      config.output_path);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs (%u warps each); %u jobs at %g jobs/s, "
                "task footprint %u warps",
                config.platform.num_gpus, config.platform.total_warps(),
                num_jobs, flags.get_double("rate"),
                flags.get_int("warps") > 0
                    ? static_cast<std::uint32_t>(flags.get_int("warps"))
                    : work::matmul_2d_task_warps());
  csv.comment(line);

  struct ArmResult {
    serve::ServeResult result;
    sim::RunReport report;
    bool checker_ok = true;
  };
  auto run_arm = [&](double mem_mb, double threshold) {
    core::Platform platform = config.platform;
    platform.gpu_memory_bytes =
        static_cast<std::uint64_t>(mem_mb * static_cast<double>(core::kMB));

    serve::ServeConfig serve_config;
    serve_config.arrival.mode = serve::ArrivalMode::kPoisson;
    serve_config.arrival.rate_jobs_per_s = flags.get_double("rate");
    serve_config.arrival.seed = config.seed;
    serve_config.admission.max_jobs_in_flight =
        static_cast<std::uint32_t>(flags.get_int("max-in-flight"));
    serve_config.engine.seed = config.seed;
    serve_config.engine.occupancy_threshold = threshold;

    sched::DmdaScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler,
                              serve_config);
    sim::InvariantChecker checker;
    engine.add_inspector(&checker);
    char context[96];
    std::snprintf(context, sizeof context,
                  "abl_occupancy mem=%g threshold=%g", mem_mb, threshold);
    sim::RunReportCollector collector(
        {.context = context, .collect_trace = false});
    engine.add_inspector(&collector);

    ArmResult arm;
    try {
      arm.result = engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure(context, error);
    }
    arm.checker_ok = checker.ok();
    arm.report = collector.report();
    arm.report.serving = arm.result.serving;

    const sim::RunReport::Occupancy& occ = arm.report.occupancy;
    double mean_occupancy = 0.0;
    std::uint32_t peak_warps = 0;
    for (const sim::RunReport::Occupancy::Gpu& g : occ.per_gpu) {
      mean_occupancy += g.mean_occupancy;
      peak_warps = std::max(peak_warps, g.peak_warps);
    }
    if (!occ.per_gpu.empty()) {
      mean_occupancy /= static_cast<double>(occ.per_gpu.size());
    }
    const sim::RunReport::Serving& serving = arm.result.serving;
    csv.row({mem_mb, threshold, serving.throughput_jobs_per_s,
             serving.latency_p50_us / 1e3, serving.latency_p99_us / 1e3,
             static_cast<std::int64_t>(serving.jobs_shed),
             static_cast<std::int64_t>(arm.result.metrics.total_loads()),
             arm.result.metrics.transfers_mb(), mean_occupancy,
             static_cast<std::int64_t>(peak_warps),
             static_cast<std::int64_t>(occ.admissions),
             static_cast<std::int64_t>(occ.rejections),
             static_cast<std::int64_t>(occ.co_run_pairs)});
    return arm;
  };

  bool all_checks_ok = true;
  bool claim_ok = true;
  for (const double mem_mb : mem_mbs) {
    double exclusive_throughput = -1.0;
    double best_sharing_throughput = -1.0;
    double best_sharing_threshold = 0.0;
    std::uint64_t sharing_co_run_pairs = 0;
    for (const double threshold : thresholds) {
      const ArmResult arm = run_arm(mem_mb, threshold);
      if (!arm.checker_ok) {
        std::fprintf(stderr,
                     "abl_occupancy: invariant violation at mem=%g "
                     "threshold=%g\n",
                     mem_mb, threshold);
        all_checks_ok = false;
      }
      if (threshold == 0.0) {
        exclusive_throughput = arm.result.serving.throughput_jobs_per_s;
        if (arm.report.occupancy.enabled) {
          std::fprintf(stderr,
                       "abl_occupancy: threshold 0 armed the occupancy "
                       "section\n");
          all_checks_ok = false;
        }
      } else {
        if (arm.result.serving.throughput_jobs_per_s >
            best_sharing_throughput) {
          best_sharing_throughput = arm.result.serving.throughput_jobs_per_s;
          best_sharing_threshold = threshold;
        }
        sharing_co_run_pairs += arm.report.occupancy.co_run_pairs;
        // Schema asserts (occupancy is v8+): the occupancy section must be armed, hold the
        // platform's warp budget and serialize into the report JSON.
        const sim::RunReport::Occupancy& occ = arm.report.occupancy;
        if (sim::RunReport::kSchemaVersion < 8 || !occ.enabled ||
            occ.total_warps != config.platform.total_warps() ||
            occ.budget_warps == 0 || occ.threshold != threshold ||
            occ.per_gpu.size() != config.platform.num_gpus ||
            occ.admissions == 0) {
          std::fprintf(stderr,
                       "abl_occupancy: schema-v8 occupancy section malformed "
                       "at mem=%g threshold=%g\n",
                       mem_mb, threshold);
          all_checks_ok = false;
        }
        const std::string json = sim::run_report_to_json(arm.report);
        if (json.find("\"occupancy\":{\"enabled\":true") ==
            std::string::npos) {
          std::fprintf(stderr,
                       "abl_occupancy: occupancy section missing from the "
                       "report JSON\n");
          all_checks_ok = false;
        }
      }
    }
    if (exclusive_throughput >= 0.0 && best_sharing_throughput >= 0.0) {
      // The throughput claim holds only while memory is ample: under
      // pressure the co-runners' combined working sets overflow M and the
      // crossover is the ablation's finding, not a failure.
      const bool claim_point = mem_mb == mem_mbs.front();
      if (best_sharing_throughput <= exclusive_throughput) {
        if (claim_point) {
          std::fprintf(stderr,
                       "CLAIM FAILED: best sharing throughput %.2f jobs/s "
                       "(threshold %g) does not beat exclusive %.2f at the "
                       "ample point mem=%g MB\n",
                       best_sharing_throughput, best_sharing_threshold,
                       exclusive_throughput, mem_mb);
          claim_ok = false;
        } else if (flags.get_bool("check")) {
          std::printf("mem=%g MB: crossover — sharing %.2f jobs/s <= "
                      "exclusive %.2f under memory pressure\n",
                      mem_mb, best_sharing_throughput, exclusive_throughput);
        }
      } else if (flags.get_bool("check")) {
        std::printf("mem=%g MB: sharing %.2f jobs/s (threshold %g) > "
                    "exclusive %.2f jobs/s\n",
                    mem_mb, best_sharing_throughput, best_sharing_threshold,
                    exclusive_throughput);
      }
      if (claim_point && sharing_co_run_pairs == 0) {
        std::fprintf(stderr,
                     "CLAIM FAILED: no co-run pairs observed at mem=%g — "
                     "sharing never actually co-scheduled\n",
                     mem_mb);
        claim_ok = false;
      }
    }
  }

  if (flags.get_bool("check")) {
    if (!all_checks_ok || !claim_ok) return 1;
    std::printf("claim OK: sharing beats exclusive at the ample memory "
                "point, zero invariant violations, schema-v8 occupancy "
                "section intact\n");
  }
  return 0;
}
