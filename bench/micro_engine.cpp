// Microbenchmark: end-to-end simulator throughput (simulated tasks per
// wall second) and per-scheduler decision cost, via full engine runs.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "workloads/matmul2d.hpp"

namespace {

using namespace mg;

enum class Kind { kEager, kDmdar, kDarts, kDartsOpti };

std::unique_ptr<core::Scheduler> make(Kind kind) {
  switch (kind) {
    case Kind::kEager:
      return std::make_unique<sched::EagerScheduler>();
    case Kind::kDmdar:
      return std::make_unique<sched::DmdaScheduler>();
    case Kind::kDarts:
      return std::make_unique<core::DartsScheduler>();
    case Kind::kDartsOpti:
      return std::make_unique<core::DartsScheduler>(
          core::DartsOptions{.use_luf = true, .opti = true});
  }
  return nullptr;
}

void BM_EngineRun(benchmark::State& state) {
  const auto kind = static_cast<Kind>(state.range(0));
  const auto n = static_cast<std::uint32_t>(state.range(1));
  const core::TaskGraph graph = work::make_matmul_2d({.n = n});
  const core::Platform platform = core::make_v100_platform(2);

  double pop_us = 0.0;
  for (auto _ : state) {
    auto scheduler = make(kind);
    sim::RuntimeEngine engine(graph, platform, *scheduler);
    const core::RunMetrics metrics = engine.run();
    benchmark::DoNotOptimize(metrics.makespan_us);
    pop_us = metrics.scheduler_pop_us;
  }
  state.SetItemsProcessed(state.iterations() * graph.num_tasks());
  state.counters["sched_pop_ms"] = pop_us / 1e3;
}
BENCHMARK(BM_EngineRun)
    ->Args({static_cast<long>(Kind::kEager), 32})
    ->Args({static_cast<long>(Kind::kDmdar), 32})
    ->Args({static_cast<long>(Kind::kDarts), 32})
    ->Args({static_cast<long>(Kind::kDartsOpti), 32})
    ->Args({static_cast<long>(Kind::kDarts), 64})
    ->Args({static_cast<long>(Kind::kDartsOpti), 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace
