// Microbenchmark: hypergraph partitioner cost and quality scaling — the
// "partitioning time of hMETIS+R has a significant impact on performance"
// observation of Section V-C depends on this scaling.
#include <benchmark/benchmark.h>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/partitioner.hpp"
#include "hypergraph/quality.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/matmul2d.hpp"

namespace {

using namespace mg;

void BM_PartitionMatmul2D(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto parts = static_cast<std::uint32_t>(state.range(1));
  const core::TaskGraph graph = work::make_matmul_2d({.n = n});
  const hyper::Hypergraph hypergraph = hyper::hypergraph_from_task_graph(graph);

  hyper::PartitionerConfig config;
  config.num_parts = parts;
  std::uint64_t connectivity = 0;
  for (auto _ : state) {
    config.seed += 1;  // fresh randomness per iteration
    const auto part = hyper::partition_hypergraph(hypergraph, config);
    benchmark::DoNotOptimize(part.data());
    connectivity =
        hyper::evaluate_partition(hypergraph, part, parts).connectivity_minus_1;
  }
  state.counters["tasks"] = static_cast<double>(graph.num_tasks());
  state.counters["connectivity"] = static_cast<double>(connectivity);
}
BENCHMARK(BM_PartitionMatmul2D)
    ->Args({16, 2})
    ->Args({32, 2})
    ->Args({32, 4})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PartitionCholesky(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::TaskGraph graph = work::make_cholesky_tasks({.n = n});
  const hyper::Hypergraph hypergraph = hyper::hypergraph_from_task_graph(graph);

  hyper::PartitionerConfig config;
  config.num_parts = 4;
  for (auto _ : state) {
    config.seed += 1;
    const auto part = hyper::partition_hypergraph(hypergraph, config);
    benchmark::DoNotOptimize(part.data());
  }
  state.counters["tasks"] = static_cast<double>(graph.num_tasks());
}
BENCHMARK(BM_PartitionCholesky)->Arg(12)->Arg(20)->Arg(28)
    ->Unit(benchmark::kMillisecond);

}  // namespace
