// Figure 5: performance on the 2D matmul with 2 V100s in *simulation* —
// scheduler cost is not charged (the paper runs StarPU over SimGrid here),
// which is what lets mHFP and hMETIS+R show their schedule quality.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 5: 2D matmul, 2 GPUs, simulation (no sched cost)");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig05", "2D matmul on 2 V100s, simulation, performance");
  const bool full = flags.get_bool("full");
  const double max_ws = full ? 4000.0 : 2800.0;
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(max_ws, full));

  const double mhfp_cap = full ? 2300.0 : 1700.0;
  bench::run_figure(config, points,
                    {bench::eager_spec(),
                     bench::dmdar_spec(),
                     bench::darts_spec({.use_luf = false}),
                     bench::darts_spec({.use_luf = true}),
                     bench::mhfp_spec(/*with_sched_time=*/false, mhfp_cap),
                     bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
