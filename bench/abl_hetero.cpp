// Ablation: heterogeneous GPUs (2 fast + 2 slow devices). Shows which
// schedulers adapt their work split to device speed — DMDA by its
// completion-time model, mHFP by duration-balancing, hMETIS+R by target
// shares, DARTS and EAGER by their natural pull rate.
#include <memory>
#include <string>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "matmul_points.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sched/hmetis_r.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Heterogeneous-GPU ablation (2 fast + 2 slow)");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  flags.define_double("slow-factor", 0.5,
                      "speed of the slow devices relative to a V100");
  if (!flags.parse(argc, argv)) return 0;

  auto config = bench::config_from_flags(
      flags, "abl_hetero", "heterogeneous platform ablation on 2D matmul");
  const double slow = flags.get_double("slow-factor");
  config.platform.gpu_gflops_per_device = {
      config.platform.gpu_gflops, config.platform.gpu_gflops,
      config.platform.gpu_gflops * slow, config.platform.gpu_gflops * slow};

  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");
  const auto ns = bench::matmul2d_ns(full ? 4000.0 : 2500.0, full);

  util::CsvWriter csv({"working_set_mb", "scheduler", "gflops",
                       "fast_tasks", "slow_tasks", "imbalance"},
                      config.output_path);
  char line[120];
  std::snprintf(line, sizeof line, "peak_gflops: %.0f (2 fast + 2 at %.0f%%)",
                config.platform.peak_gflops(), 100.0 * slow);
  csv.comment(line);

  for (std::uint32_t n : ns) {
    const core::TaskGraph graph = work::make_matmul_2d({.n = n});
    const double ws_mb =
        static_cast<double>(graph.working_set_bytes()) / 1e6;
    for (int kind = 0; kind < 5; ++kind) {
      std::unique_ptr<core::Scheduler> scheduler;
      switch (kind) {
        case 0: scheduler = std::make_unique<sched::EagerScheduler>(); break;
        case 1: scheduler = std::make_unique<sched::DmdaScheduler>(); break;
        case 2: scheduler = std::make_unique<core::DartsScheduler>(); break;
        case 3: scheduler = std::make_unique<sched::HfpScheduler>(); break;
        default: scheduler = std::make_unique<sched::HmetisScheduler>(); break;
      }
      if (kind == 3 && ws_mb > 1500.0) continue;  // mHFP packing cost
      sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                {.seed = config.seed});
      const core::RunMetrics metrics = observer.run(
          engine, graph, std::string(scheduler->name()) + " n=" + std::to_string(n));
      const auto fast = metrics.per_gpu[0].tasks_executed +
                        metrics.per_gpu[1].tasks_executed;
      const auto slow_tasks = metrics.per_gpu[2].tasks_executed +
                              metrics.per_gpu[3].tasks_executed;
      // Duration imbalance: max busy time / mean busy time.
      double max_busy = 0.0;
      double total_busy = 0.0;
      for (const auto& gpu : metrics.per_gpu) {
        max_busy = std::max(max_busy, gpu.busy_time_us);
        total_busy += gpu.busy_time_us;
      }
      csv.row({ws_mb, std::string(scheduler->name()),
               metrics.achieved_gflops(), static_cast<std::int64_t>(fast),
               static_cast<std::int64_t>(slow_tasks),
               max_busy / (total_busy / 4.0)});
    }
  }
  return 0;
}
