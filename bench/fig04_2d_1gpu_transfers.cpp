// Figure 4: amount of data transfers (MB) for the Figure 3 experiment; the
// per-point "pci_limit_mb" comment carries the PCI-bus-limit reference
// curve.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 4: 2D matmul, 1 GPU, transfers vs working set");
  bench::add_standard_flags(flags, /*default_gpus=*/1);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig04", "2D matmul on 1 V100, data transfers");
  const bool full = flags.get_bool("full");
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(2000.0, full));

  // Transfer volumes are independent of scheduler-cost accounting, so the
  // mHFP timing variants collapse to one curve here.
  const double mhfp_cap = full ? 1400.0 : 1200.0;
  bench::run_figure(config, points,
                    {bench::eager_spec(),
                     bench::dmdar_spec(),
                     bench::darts_spec({.use_luf = false}),
                     bench::darts_spec({.use_luf = true}),
                     bench::mhfp_spec(/*with_sched_time=*/false, mhfp_cap)});
  return 0;
}
