// Ablation: dependency handling on the Cholesky tile DAG. Three arms per
// working-set point:
//   - independent: dependencies stripped (the paper's flattened treatment) —
//     every task is ready at t=0, the scheduler sees the full pool.
//   - DAG release: real RAW/WAR/WAW edges, schedulers that merely gate on
//     predecessor retirement (EAGER, DMDAR) — the ready frontier trickles in.
//   - successor-aware DARTS: same DAG, but DARTS weighs the successors a
//     candidate would unlock (and the data they share) when planning, so it
//     keeps the frontier's shared tiles resident instead of thrashing them.
// The claim quantified here: on the real DAG, successor-aware DARTS needs
// fewer host loads than plain dependency release under EAGER.
#include <memory>
#include <string>
#include <vector>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "workloads/cholesky.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Dependency-handling ablation on the Cholesky tile DAG");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_deps", "independent vs DAG release vs successor-aware DARTS");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");

  const std::vector<std::uint32_t> ns =
      full ? std::vector<std::uint32_t>{8, 12, 16, 20, 25, 30, 36}
           : std::vector<std::uint32_t>{8, 12, 16, 20};

  util::CsvWriter csv({"working_set_mb", "scheduler", "deps", "gflops",
                       "loads", "transfers_mb", "makespan_ms",
                       "critical_path"},
                      config.output_path);

  for (std::uint32_t n : ns) {
    for (const bool with_deps : {false, true}) {
      const core::TaskGraph graph =
          work::make_cholesky_tasks({.n = n, .with_dependencies = with_deps});
      const double ws_mb =
          static_cast<double>(graph.working_set_bytes()) / 1e6;
      const auto critical_path =
          static_cast<double>(graph.critical_path_length());
      for (const int arm : {0, 1, 2}) {
        std::unique_ptr<core::Scheduler> scheduler;
        switch (arm) {
          case 0:
            scheduler = std::make_unique<sched::EagerScheduler>();
            break;
          case 1:
            scheduler = std::make_unique<sched::DmdaScheduler>();
            break;
          default:
            scheduler =
                std::make_unique<core::DartsScheduler>(core::DartsOptions{
                    .use_luf = true});
            break;
        }
        sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                  {.seed = config.seed});
        const core::RunMetrics metrics = observer.run(
            engine, graph,
            std::string(scheduler->name()) +
                (with_deps ? " dag" : " independent") +
                " n=" + std::to_string(n));
        csv.row({ws_mb, std::string(scheduler->name()),
                 std::string(with_deps ? "on" : "off"),
                 metrics.achieved_gflops(),
                 static_cast<double>(metrics.total_loads()),
                 metrics.transfers_mb(), metrics.makespan_us / 1000.0,
                 critical_path});
      }
    }
  }
  return 0;
}
