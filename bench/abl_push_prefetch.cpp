// Ablation: push-time prefetch policy for DMDAR — none, free-space-only
// hints (our default), and *evicting* hints (StarPU prefetches allocate
// eagerly). The result cuts both ways, which is the point: because our
// hint queue is ordered by first need, evicting hints act as an oracle
// streaming prefetcher and *rescue* DMDAR's pathological points under the
// natural order (+3x at ws=1904 MB); under the randomized order the same
// mechanism prefetches the wrong data and hurts. StarPU sits between these
// poles — its prefetches are eager like the third mode but not globally
// ordered, which is the prefetch/eviction conflict of the paper's
// Section V-B discussion.
#include <memory>

#include "common/figure_harness.hpp"
#include "matmul_points.hpp"
#include "sched/dmda.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Push-prefetch ablation for DMDAR");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  flags.define_bool("random-order", false,
                    "use the randomized submission order (Figure 9 regime)");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_push_prefetch", "DMDAR push-prefetch policy ablation");
  const bool full = flags.get_bool("full");
  const bool random = flags.get_bool("random-order");
  const auto points = bench::matmul2d_points(
      bench::matmul2d_ns(full ? 2800.0 : 2000.0, full), random, 1);

  auto dmdar = [](const char* label, bool push, bool evicting) {
    bench::SchedulerSpec spec;
    spec.label = label;
    spec.factory = [push] {
      return std::make_unique<sched::DmdaScheduler>(
          /*ready=*/true, sched::kDefaultReadyWindow, /*push_prefetch=*/push);
    };
    spec.hints_may_evict = evicting;
    return spec;
  };

  bench::run_figure(
      config, points,
      {dmdar("DMDAR (no push prefetch)", false, false),
       dmdar("DMDAR (hints fill free space)", true, false),
       dmdar("DMDAR (hints may evict)", true, true)});
  return 0;
}
