// Figure 3: performance (GFlop/s) of EAGER, DMDAR, DARTS, DARTS+LUF and
// mHFP (with and without scheduling time) on the 2D matrix multiplication
// with a single 500 MB Tesla V100, working sets 140..2000 MB.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 3: 2D matmul, 1 GPU, GFlop/s vs working set");
  bench::add_standard_flags(flags, /*default_gpus=*/1);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig03", "2D matmul on 1 V100, performance");
  const bool full = flags.get_bool("full");
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(2000.0, full));

  // The paper shows mHFP only on a few modest working sets (its packing
  // time dominates beyond ~1300 MB); mirror that cap.
  const double mhfp_cap = full ? 1400.0 : 1200.0;
  bench::run_figure(config, points,
                    {bench::eager_spec(),
                     bench::dmdar_spec(),
                     bench::darts_spec({.use_luf = false}),
                     bench::darts_spec({.use_luf = true}),
                     bench::mhfp_spec(/*with_sched_time=*/true, mhfp_cap),
                     bench::mhfp_spec(/*with_sched_time=*/false, mhfp_cap)});
  return 0;
}
