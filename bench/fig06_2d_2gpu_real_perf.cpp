// Figure 6: performance on the 2D matmul with 2 V100s in "real" conditions:
// measured scheduler decision/partitioning time is charged to the timeline.
// mHFP is dropped (prohibitive packing time, as in the paper); hMETIS+R
// appears with and without its partitioning time.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 6: 2D matmul, 2 GPUs, with scheduler cost");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig06", "2D matmul on 2 V100s, real, performance");
  const bool full = flags.get_bool("full");
  const double max_ws = full ? 4000.0 : 2800.0;
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(max_ws, full));

  bench::run_figure(
      config, points,
      {bench::eager_spec(),
       bench::dmdar_spec(),
       bench::darts_spec({.use_luf = false}, /*with_sched_time=*/true),
       bench::darts_spec({.use_luf = true}, /*with_sched_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
