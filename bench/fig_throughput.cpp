// fig_throughput — serving throughput and tail latency across arrival rates.
//
// Streams a sequence of matmul jobs through the serving loop at increasing
// Poisson arrival rates (sweeping into saturation) for each scheduler and
// reports, per (rate, scheduler): achieved throughput, latency
// p50/p95/p99, deadline-miss rate, shed count, host-bus loads and the
// cross-job reuse the data-aware policies extract from inter-job sharing.
// The paper's batch figures ask "how fast is one graph"; this asks the
// serving question: how many graphs per second before the tail collapses —
// and how much of DARTS/DMDAR's advantage survives when the working set is
// shared *across* jobs instead of within one.
//
//   ./fig_throughput --gpus=2 --n=8 --num-jobs=60 --rates=25,50,100,200
//   ./fig_throughput --arrival=closed-loop --concurrency=6
//   ./fig_throughput --rates=50 --run-report=serving.json
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "serve/autoscale_flags.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "workloads/matmul2d.hpp"

namespace {

using namespace mg;

std::vector<double> parse_rates(const std::string& spec) {
  std::vector<double> rates;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) rates.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "fig_throughput: streamed serving throughput/latency across arrival "
      "rates.\nschedulers: EAGER, DMDAR, DARTS+LUF, mHFP");
  // 150 MB against a 224 MB template working set: tight enough that the
  // eviction policy decides how much of the cross-job reuse survives.
  bench::add_standard_flags(flags, 2, /*default_mem_mb=*/150);
  flags.define_int("n", 8, "matmul template dimension (N)")
      .define_int("num-jobs", 60, "jobs streamed per run")
      .define_string("rates", "25,50,100,200",
                     "comma-separated Poisson arrival rates (jobs/s)")
      .define_string("arrival", "poisson", "poisson | closed-loop")
      .define_int("concurrency", 4, "closed-loop client count")
      .define_double("deadline-ms", 0.0,
                     "per-job latency SLO in ms (0 = no deadlines)")
      .define_int("max-in-flight", 8,
                  "admission bound on concurrently in-flight jobs (the "
                  "footprint sum over-counts shared data, so bound jobs, "
                  "not bytes)")
      .define_int("max-queue", 0,
                  "admission queue bound (jobs past it are shed; 0 = "
                  "unbounded)")
      .define_bool("no-share", false,
                   "ablation: give every job private data (no cross-job "
                   "reuse possible)")
      .define_bool("check", false,
                   "run the online InvariantChecker over every streamed run")
      .define_double("occupancy-threshold", 0.0,
                     "GPU-sharing admission threshold (fraction of the warp "
                     "budget; 0 = exclusive ownership, byte-identical "
                     "legacy behaviour)")
      .define_int("occupancy-warps", 0,
                  "explicit warp footprint per job task (0 = derive from "
                  "the matmul tile geometry)")
      .define_int("tiers", 0,
                  "SLO tiers (0 = no tiering, byte-identical legacy "
                  "behaviour). With N > 0 jobs cycle through priorities "
                  "0..N-1 and the CSV grows per-tier p50/p95/p99 columns");
  serve::add_autoscale_flags(flags);
  if (!flags.parse(argc, argv)) return 0;

  bench::FigureConfig config = bench::config_from_flags(
      flags, "fig_throughput",
      "serving throughput and tail latency vs. arrival rate");

  const auto arrival = serve::parse_arrival_mode(flags.get_string("arrival"));
  if (!arrival.has_value()) {
    std::fprintf(stderr, "unknown --arrival '%s'\n",
                 flags.get_string("arrival").c_str());
    return 1;
  }
  const std::vector<double> rates = parse_rates(flags.get_string("rates"));
  if (rates.empty()) {
    std::fprintf(stderr, "--rates is empty\n");
    return 1;
  }

  const double occupancy_threshold = flags.get_double("occupancy-threshold");
  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n")),
       .derive_warps = occupancy_threshold > 0.0}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("num-jobs"));
  const std::uint32_t num_tiers =
      static_cast<std::uint32_t>(flags.get_int("tiers"));
  std::vector<serve::JobSpec> jobs(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    jobs[j].deadline_us = flags.get_double("deadline-ms") * 1e3;
    jobs[j].warps = static_cast<std::uint32_t>(flags.get_int("occupancy-warps"));
    if (num_tiers > 0) jobs[j].priority = j % num_tiers;
  }

  struct Spec {
    std::string label;
    std::function<std::unique_ptr<core::Scheduler>()> factory;
  };
  const std::vector<Spec> specs = {
      {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }},
      {"DMDAR", [] { return std::make_unique<sched::DmdaScheduler>(); }},
      {"DARTS+LUF", [] { return std::make_unique<core::DartsScheduler>(); }},
      {"mHFP", [] { return std::make_unique<sched::HfpScheduler>(); }},
  };

  std::vector<std::string> columns = {
      "rate_jobs_per_s", "scheduler", "throughput_jobs_per_s", "p50_ms",
      "p95_ms", "p99_ms", "deadline_miss_rate", "jobs_shed", "loads",
      "transfers_mb", "reuse_mb", "peak_in_flight", "mean_occupancy",
      "peak_warps", "co_run_pairs", "occ_rejections"};
  for (std::uint32_t t = 0; t < num_tiers; ++t) {
    const std::string prefix = "t" + std::to_string(t) + "_";
    columns.push_back(prefix + "p50_ms");
    columns.push_back(prefix + "p95_ms");
    columns.push_back(prefix + "p99_ms");
  }
  util::CsvWriter csv(columns, config.output_path);
  csv.comment("fig_throughput: " + std::string(config.title));
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs x %.0f MB; template n=%lld (%u tasks), "
                "%u jobs, arrival=%s%s",
                config.platform.num_gpus,
                static_cast<double>(config.platform.gpu_memory_bytes) / 1e6,
                static_cast<long long>(flags.get_int("n")),
                templates[0].num_tasks(), num_jobs,
                flags.get_string("arrival").c_str(),
                flags.get_bool("no-share") ? " (sharing ablated)" : "");
  csv.comment(line);

  std::vector<sim::RunReport> reports;
  for (const double rate : rates) {
    for (const Spec& spec : specs) {
      serve::ServeConfig serve_config;
      serve_config.arrival.mode = *arrival;
      serve_config.arrival.rate_jobs_per_s = rate;
      serve_config.arrival.concurrency =
          static_cast<std::uint32_t>(flags.get_int("concurrency"));
      serve_config.arrival.seed = config.seed;
      serve_config.admission.max_jobs_in_flight =
          static_cast<std::uint32_t>(flags.get_int("max-in-flight"));
      serve_config.admission.max_queue_depth =
          static_cast<std::uint32_t>(flags.get_int("max-queue"));
      serve_config.share_data = !flags.get_bool("no-share");
      serve_config.engine.seed = config.seed;
      serve_config.engine.occupancy_threshold = occupancy_threshold;
      if (num_tiers > 0) {
        serve_config.slo.enabled = true;
        serve_config.slo.tiers = slo::TierPolicy::even(num_tiers);
      }
      serve_config.autoscale = serve::autoscale_from_flags(flags);
      serve_config.engine.initial_active_nodes =
          serve::autoscale_initial_nodes(flags);
      if (serve_config.autoscale.enabled && !config.platform.is_cluster()) {
        std::fprintf(stderr, "--autoscale needs --nodes >= 2\n");
        return 1;
      }

      auto scheduler = spec.factory();
      serve::ServeEngine engine(templates, jobs, config.platform, *scheduler,
                                serve_config);
      std::unique_ptr<sim::FaultInjector> injector;
      if (!config.fault_plan.empty()) {
        injector = std::make_unique<sim::FaultInjector>(config.fault_plan);
        engine.set_fault_injector(injector.get());
      }
      sim::InvariantChecker checker;
      if (flags.get_bool("check")) engine.add_inspector(&checker);
      std::unique_ptr<sim::RunReportCollector> collector;
      // The occupancy columns need the collector even when no run report is
      // written to disk.
      if (!config.run_report_path.empty() || occupancy_threshold > 0.0) {
        sim::RunReportCollector::Options options;
        char context[96];
        std::snprintf(context, sizeof context, "fig_throughput rate=%g",
                      rate);
        options.context = context;
        options.collect_trace = false;
        collector =
            std::make_unique<sim::RunReportCollector>(std::move(options));
        engine.add_inspector(collector.get());
      }

      serve::ServeResult result;
      try {
        result = engine.run();
      } catch (const sim::EngineError& error) {
        sim::exit_engine_failure(spec.label + " at rate " +
                                     util::format_double(rate),
                                 error);
      }
      sim::RunReport::Occupancy occupancy;
      if (collector != nullptr) {
        sim::RunReport report = collector->report();
        report.serving = result.serving;
        report.autoscaling.scale_out_events = result.scale_out_events;
        report.autoscaling.scale_in_events = result.scale_in_events;
        // Event counters (fusions, vetoes) come from the collector; the
        // per-tier latency table only the serving layer can fill.
        if (result.slo.enabled) {
          report.slo.enabled = true;
          report.slo.tiers = result.slo.tiers;
          report.slo.per_tier = result.slo.per_tier;
        }
        occupancy = report.occupancy;
        if (!config.run_report_path.empty()) {
          reports.push_back(std::move(report));
        }
      }
      double mean_occupancy = 0.0;
      std::uint32_t peak_warps = 0;
      for (const sim::RunReport::Occupancy::Gpu& g : occupancy.per_gpu) {
        mean_occupancy += g.mean_occupancy;
        peak_warps = std::max(peak_warps, g.peak_warps);
      }
      if (!occupancy.per_gpu.empty()) {
        mean_occupancy /= static_cast<double>(occupancy.per_gpu.size());
      }

      const sim::RunReport::Serving& serving = result.serving;
      std::vector<util::CsvCell> cells = {
          rate, spec.label, serving.throughput_jobs_per_s,
          serving.latency_p50_us / 1e3, serving.latency_p95_us / 1e3,
          serving.latency_p99_us / 1e3, serving.deadline_miss_rate,
          static_cast<std::int64_t>(serving.jobs_shed),
          static_cast<std::int64_t>(result.metrics.total_loads()),
          result.metrics.transfers_mb(),
          static_cast<double>(serving.cross_job_reuse_bytes) / 1e6,
          static_cast<std::int64_t>(serving.peak_jobs_in_flight),
          mean_occupancy, static_cast<std::int64_t>(peak_warps),
          static_cast<std::int64_t>(occupancy.co_run_pairs),
          static_cast<std::int64_t>(occupancy.rejections)};
      for (std::uint32_t t = 0; t < num_tiers; ++t) {
        const sim::RunReport::Slo::Tier& tier = result.slo.per_tier[t];
        cells.push_back(tier.p50_us / 1e3);
        cells.push_back(tier.p95_us / 1e3);
        cells.push_back(tier.p99_us / 1e3);
      }
      csv.row(cells);
    }
  }

  if (!config.run_report_path.empty() &&
      !sim::write_run_reports(reports, "fig_throughput: " + config.title,
                              config.run_report_path)) {
    std::fprintf(stderr, "failed to write run report to %s\n",
                 config.run_report_path.c_str());
    return 1;
  }
  return 0;
}
