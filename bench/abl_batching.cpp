// Ablation: cross-job super-task batching vs. plain tiered serving.
//
// Streams a Poisson burst of matmul jobs — priorities alternating across
// two SLO tiers — through the serving loop with a tight in-flight bound,
// so the admission queue builds up and every retirement admits a leader
// with fusable waiters behind it. Three arms per memory point: `off`
// (SloConfig disabled — the legacy serving path), `tiers` (tiers armed,
// batching off) and `batched` (the BatchPlanner fuses queued jobs of the
// same template into super-task launches: shared loads paid once, riders
// priced at the marginal-compute scale).
// The claim under test (--check): at the first --mem-mbs point (memory to
// spare) the batched arm both completes more jobs per second AND lands a
// lower high-tier p99 than the tiers-only arm, with at least one fusion
// actually observed and zero invariant violations; and a run with every
// batching knob set but `enabled = false` stays byte-identical to the
// plain `off` arm (the serialized run reports compare equal as strings).
// The remaining memory points sweep into pressure and are checked for
// violations only.
//
//   ./abl_batching --gpus=2 --rate=400 --num-jobs=40 --check
#include <cstdio>
#include <string>
#include <vector>

#include "common/figure_harness.hpp"
#include "sched/dmda.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "workloads/matmul2d.hpp"

namespace {

std::vector<double> parse_list(const std::string& spec) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) values.push_back(std::stod(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "Batching ablation: cross-job super-task fusion vs. plain tiered "
      "serving x memory pressure (DMDAR)");
  bench::add_standard_flags(flags, /*default_gpus=*/2,
                            /*default_mem_mb=*/150);
  flags.define_int("n", 6, "matmul template dimension (N)")
      .define_int("num-jobs", 40, "jobs in the burst")
      .define_double("rate", 400.0, "Poisson arrival rate (jobs/s)")
      .define_int("max-in-flight", 4,
                  "admission bound on concurrently in-flight jobs (tight, "
                  "so the queue holds fusion candidates)")
      .define_string("mem-mbs", "150,60",
                     "comma-separated per-GPU memory points (MB)")
      .define_int("max-batch", 4, "jobs per super-task batch, leader incl.")
      .define_double("marginal-compute", 0.4,
                     "fused rider compute cost (fraction of a full run)")
      .define_bool("check", false,
                   "assert the headline claim: at the first (ample) memory "
                   "point batching beats tiers-only on jobs/s AND high-tier "
                   "p99, with >= 1 fusion, zero invariant violations and a "
                   "byte-identical batching-disabled run");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_batching",
      "cross-job super-task batching vs. plain tiered serving");

  const std::vector<double> mem_mbs = parse_list(flags.get_string("mem-mbs"));
  if (mem_mbs.empty()) {
    std::fprintf(stderr, "--mem-mbs must be non-empty\n");
    return 1;
  }

  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n"))}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("num-jobs"));
  // Two tiers, priorities alternating 0/1: every other job is high-tier.
  std::vector<serve::JobSpec> jobs(num_jobs);
  for (std::uint32_t j = 0; j < num_jobs; ++j) jobs[j].priority = j % 2;

  // The tier map both arms share: high tier outranks the whole low tier in
  // the admission queue and carries a latency SLO.
  const auto make_slo = [&](bool batching) {
    slo::SloConfig slo;
    slo.enabled = true;
    slo.tiers = slo::TierPolicy{
        {{.min_priority = 0, .deadline_us = 0.0, .admission_weight = 0},
         {.min_priority = 1, .deadline_us = 50e3, .admission_weight = 4}}};
    slo.batching = batching;
    slo.max_batch = static_cast<std::uint32_t>(flags.get_int("max-batch"));
    slo.marginal_compute = flags.get_double("marginal-compute");
    return slo;
  };

  util::CsvWriter csv(
      {"mem_mb", "arm", "throughput_jobs_per_s", "p50_ms", "p99_ms",
       "hi_p99_ms", "hi_misses", "jobs_fused", "super_tasks", "loads",
       "transfers_mb"},
      config.output_path);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs; %u jobs at %g jobs/s, max %lld in "
                "flight, batch cap %lld, rider cost %g",
                config.platform.num_gpus, num_jobs, flags.get_double("rate"),
                static_cast<long long>(flags.get_int("max-in-flight")),
                static_cast<long long>(flags.get_int("max-batch")),
                flags.get_double("marginal-compute"));
  csv.comment(line);

  struct ArmResult {
    serve::ServeResult result;
    sim::RunReport report;
    std::string json;
    bool checker_ok = true;
  };
  auto run_arm = [&](double mem_mb, const char* arm,
                     const slo::SloConfig& slo, bool emit_row) {
    core::Platform platform = config.platform;
    platform.gpu_memory_bytes =
        static_cast<std::uint64_t>(mem_mb * static_cast<double>(core::kMB));

    serve::ServeConfig serve_config;
    serve_config.arrival.mode = serve::ArrivalMode::kPoisson;
    serve_config.arrival.rate_jobs_per_s = flags.get_double("rate");
    serve_config.arrival.seed = config.seed;
    serve_config.admission.max_jobs_in_flight =
        static_cast<std::uint32_t>(flags.get_int("max-in-flight"));
    serve_config.engine.seed = config.seed;
    serve_config.slo = slo;

    sched::DmdaScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler,
                              serve_config);
    sim::InvariantChecker checker;
    engine.add_inspector(&checker);
    // The byte-identity comparison relies on both disabled arms sharing
    // this context string, so keep it independent of `arm`.
    char context[96];
    std::snprintf(context, sizeof context, "abl_batching mem=%g", mem_mb);
    sim::RunReportCollector collector(
        {.context = context, .collect_trace = false});
    engine.add_inspector(&collector);

    ArmResult out;
    try {
      out.result = engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure(context, error);
    }
    out.checker_ok = checker.ok();
    out.report = collector.report();
    out.report.serving = out.result.serving;
    // Counters (jobs_fused, ...) come from the collector; the per-tier
    // latency table only the serving layer can fill.
    if (out.result.slo.enabled) {
      out.report.slo.enabled = true;
      out.report.slo.tiers = out.result.slo.tiers;
      out.report.slo.per_tier = out.result.slo.per_tier;
    }
    out.json = sim::run_report_to_json(out.report);

    if (emit_row) {
      const sim::RunReport::Serving& serving = out.result.serving;
      double hi_p99_ms = 0.0;
      std::int64_t hi_misses = 0;
      if (!out.result.slo.per_tier.empty()) {
        const sim::RunReport::Slo::Tier& hi = out.result.slo.per_tier.back();
        hi_p99_ms = hi.p99_us / 1e3;
        hi_misses = static_cast<std::int64_t>(hi.deadline_misses);
      }
      csv.row({mem_mb, arm, serving.throughput_jobs_per_s,
               serving.latency_p50_us / 1e3, serving.latency_p99_us / 1e3,
               hi_p99_ms, hi_misses,
               static_cast<std::int64_t>(out.report.slo.jobs_fused),
               static_cast<std::int64_t>(out.report.slo.super_tasks),
               static_cast<std::int64_t>(out.result.metrics.total_loads()),
               out.result.metrics.transfers_mb()});
    }
    return out;
  };

  bool all_checks_ok = true;
  bool claim_ok = true;
  std::vector<sim::RunReport> reports;
  for (const double mem_mb : mem_mbs) {
    // Byte-identity: every batching knob set but the master switch off must
    // reproduce the plain run bit for bit.
    const ArmResult off =
        run_arm(mem_mb, "off", slo::SloConfig{}, /*emit_row=*/true);
    slo::SloConfig dormant = make_slo(/*batching=*/true);
    dormant.enabled = false;
    const ArmResult off_knobs =
        run_arm(mem_mb, "off+knobs", dormant, /*emit_row=*/false);
    if (off.json != off_knobs.json) {
      std::fprintf(stderr,
                   "CLAIM FAILED: batching knobs leaked into a disabled run "
                   "at mem=%g (reports differ)\n",
                   mem_mb);
      claim_ok = false;
    }

    const ArmResult tiers =
        run_arm(mem_mb, "tiers", make_slo(/*batching=*/false), true);
    const ArmResult batched =
        run_arm(mem_mb, "batched", make_slo(/*batching=*/true), true);
    for (const ArmResult* arm : {&off, &off_knobs, &tiers, &batched}) {
      if (!arm->checker_ok) {
        std::fprintf(stderr, "abl_batching: invariant violation at mem=%g\n",
                     mem_mb);
        all_checks_ok = false;
      }
    }
    reports.push_back(off.report);
    reports.push_back(tiers.report);
    reports.push_back(batched.report);

    // Schema probe: the batched arm's slo section must serialize armed.
    if (batched.json.find("\"slo\":{\"enabled\":true") == std::string::npos) {
      std::fprintf(stderr,
                   "abl_batching: slo section missing from the batched "
                   "report JSON at mem=%g\n",
                   mem_mb);
      all_checks_ok = false;
    }

    const bool claim_point = mem_mb == mem_mbs.front();
    const double batched_tput =
        batched.result.serving.throughput_jobs_per_s;
    const double tiers_tput = tiers.result.serving.throughput_jobs_per_s;
    const double batched_hi_p99 = batched.result.slo.per_tier.back().p99_us;
    const double tiers_hi_p99 = tiers.result.slo.per_tier.back().p99_us;
    if (flags.get_bool("check")) {
      std::printf("mem=%g MB: batched %.2f jobs/s hi-p99 %.2f ms (%llu "
                  "fused) vs tiers %.2f jobs/s hi-p99 %.2f ms\n",
                  mem_mb, batched_tput, batched_hi_p99 / 1e3,
                  static_cast<unsigned long long>(
                      batched.report.slo.jobs_fused),
                  tiers_tput, tiers_hi_p99 / 1e3);
    }
    if (claim_point) {
      if (batched.report.slo.jobs_fused == 0) {
        std::fprintf(stderr,
                     "CLAIM FAILED: no fusion observed at mem=%g — the "
                     "batched arm never batched\n",
                     mem_mb);
        claim_ok = false;
      }
      if (batched_tput <= tiers_tput) {
        std::fprintf(stderr,
                     "CLAIM FAILED: batched %.2f jobs/s does not beat "
                     "tiers-only %.2f at the ample point mem=%g MB\n",
                     batched_tput, tiers_tput, mem_mb);
        claim_ok = false;
      }
      if (batched_hi_p99 >= tiers_hi_p99) {
        std::fprintf(stderr,
                     "CLAIM FAILED: batched high-tier p99 %.2f ms does not "
                     "beat tiers-only %.2f ms at the ample point mem=%g "
                     "MB\n",
                     batched_hi_p99 / 1e3, tiers_hi_p99 / 1e3, mem_mb);
        claim_ok = false;
      }
    }
  }

  if (!config.run_report_path.empty() &&
      !sim::write_run_reports(reports, "abl_batching: " + config.title,
                              config.run_report_path)) {
    std::fprintf(stderr, "failed to write run report to %s\n",
                 config.run_report_path.c_str());
    return 1;
  }
  if (flags.get_bool("check")) {
    if (!all_checks_ok || !claim_ok) return 1;
    std::printf("claim OK: batching beats tiers-only on jobs/s and "
                "high-tier p99 at the ample memory point, >= 1 fusion, "
                "zero invariant violations, disabled run byte-identical\n");
  }
  return 0;
}
