// Ablation: worker pipeline depth (taskBuffer size / prefetch lookahead).
// Depth 1 disables ahead-of-time prefetch entirely; deeper pipelines hide
// more transfer latency but pin more memory, which is the trade-off the
// paper's prefetch/eviction discussion (Section V-B, DMDAR) revolves
// around.
#include <memory>
#include <string>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "matmul_points.hpp"
#include "sched/dmda.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Prefetch-depth ablation");
  bench::add_standard_flags(flags, /*default_gpus=*/1);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_prefetch", "pipeline depth ablation on 2D matmul");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");
  const auto ns = bench::matmul2d_ns(full ? 2000.0 : 1400.0, full);

  util::CsvWriter csv({"working_set_mb", "scheduler", "pipeline_depth",
                       "gflops", "transfers_mb"},
                      config.output_path);

  for (std::uint32_t n : ns) {
    const core::TaskGraph graph = work::make_matmul_2d({.n = n});
    const double ws_mb =
        static_cast<double>(graph.working_set_bytes()) / 1e6;
    for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
      for (const bool use_darts : {true, false}) {
        std::unique_ptr<core::Scheduler> scheduler;
        if (use_darts) {
          scheduler = std::make_unique<core::DartsScheduler>();
        } else {
          scheduler = std::make_unique<sched::DmdaScheduler>();
        }
        sim::EngineConfig engine_config;
        engine_config.seed = config.seed;
        engine_config.pipeline_depth = depth;
        sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                  engine_config);
        const core::RunMetrics metrics = observer.run(
            engine, graph,
            std::string(scheduler->name()) + " depth=" + std::to_string(depth) +
                " n=" + std::to_string(n));
        csv.row({ws_mb, std::string(scheduler->name()),
                 static_cast<std::int64_t>(depth), metrics.achieved_gflops(),
                 metrics.transfers_mb()});
      }
    }
  }
  return 0;
}
