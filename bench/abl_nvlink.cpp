// Ablation: inter-GPU (NVLink) transfers — the paper's Section VI future
// work ("moving data from a nearby GPU is usually faster than loading it
// from the main memory"). Compares host-bus-only against peer-capable
// platforms on the multi-GPU 2D matmul: host traffic drops and the
// memory-constrained regime recovers throughput.
#include <memory>
#include <string>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "matmul_points.hpp"
#include "sched/dmda.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("NVLink ablation: peer transfers on/off, 4 GPUs");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_nvlink", "NVLink on/off ablation on 2D matmul");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");
  const auto ns = bench::matmul2d_ns(full ? 6000.0 : 3000.0, full);

  util::CsvWriter csv({"working_set_mb", "scheduler", "nvlink", "gflops",
                       "host_transfers_mb", "peer_transfers_mb"},
                      config.output_path);

  for (std::uint32_t n : ns) {
    const core::TaskGraph graph = work::make_matmul_2d({.n = n});
    const double ws_mb =
        static_cast<double>(graph.working_set_bytes()) / 1e6;
    for (const bool nvlink : {false, true}) {
      core::Platform platform = config.platform;
      platform.nvlink_enabled = nvlink;
      for (const bool use_darts : {true, false}) {
        std::unique_ptr<core::Scheduler> scheduler;
        if (use_darts) {
          scheduler = std::make_unique<core::DartsScheduler>();
        } else {
          scheduler = std::make_unique<sched::DmdaScheduler>();
        }
        sim::RuntimeEngine engine(graph, platform, *scheduler,
                                  {.seed = config.seed});
        const core::RunMetrics metrics = observer.run(
            engine, graph,
            std::string(scheduler->name()) + (nvlink ? " nvlink" : " host-bus") +
                " n=" + std::to_string(n));
        csv.row({ws_mb, std::string(scheduler->name()),
                 std::string(nvlink ? "on" : "off"),
                 metrics.achieved_gflops(), metrics.transfers_mb(),
                 metrics.peer_transfers_mb()});
      }
    }
  }
  return 0;
}
