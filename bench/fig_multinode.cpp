// fig_multinode — scaling one workload across cluster nodes.
//
// Sweeps the node count (default 1, 2, 4 over the same GPUs) for the
// node-oblivious schedulers (EAGER, DARTS+LUF, mHFP) against the
// hierarchical variants that partition the task graph *between nodes* with
// the hypergraph partitioner before handing each node to an unmodified
// intra-node scheduler, and the locality-aware dynamic policy. Per (nodes,
// scheduler) the CSV reports achieved GFlop/s, the inter-node network
// traffic from the run report's schema-5 "cluster" section, cross-node
// steal counts and the per-node task balance — the claim under test being
// that the hypergraph split moves measurably fewer bytes across the
// network than node-oblivious placement at equal balance.
//
//   ./fig_multinode --gpus=4 --n=16
//   ./fig_multinode --node-list=2 --run-report=multinode.json --check
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hierarchical.hpp"
#include "cluster/locality.hpp"
#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sim/engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/run_report.hpp"
#include "util/csv.hpp"
#include "workloads/matmul2d.hpp"

namespace {

using namespace mg;

std::vector<std::uint32_t> parse_node_list(const std::string& spec) {
  std::vector<std::uint32_t> nodes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string token =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) {
      nodes.push_back(static_cast<std::uint32_t>(std::stoul(token)));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(
      "fig_multinode: one workload scaled across cluster nodes.\n"
      "schedulers: EAGER, DARTS+LUF, mHFP, hier(mHFP), hier(DARTS+LUF), "
      "locality");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  flags.define_int("n", 16, "matmul dimension (N^2 tasks, 2N data)")
      .define_string("node-list", "1,2,4",
                     "comma-separated node counts to sweep (each must divide "
                     "into the GPU count with >= 1 GPU per node)")
      .define_bool("check", false,
                   "run the online InvariantChecker over every run");
  if (!flags.parse(argc, argv)) return 0;

  bench::FigureConfig config = bench::config_from_flags(
      flags, "fig_multinode", "inter-node traffic and balance vs. node count");

  const std::vector<std::uint32_t> node_counts =
      parse_node_list(flags.get_string("node-list"));
  if (node_counts.empty()) {
    std::fprintf(stderr, "--node-list is empty\n");
    return 1;
  }

  const core::TaskGraph graph = work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n"))});

  struct Spec {
    std::string label;
    std::function<std::unique_ptr<core::Scheduler>()> factory;
  };
  const auto hier = [](bench::SchedulerSpec inner) {
    return [inner = std::move(inner)]() -> std::unique_ptr<core::Scheduler> {
      return std::make_unique<cluster::HierarchicalScheduler>(inner.factory);
    };
  };
  const std::vector<Spec> specs = {
      {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }},
      {"DARTS+LUF", [] { return std::make_unique<core::DartsScheduler>(); }},
      {"mHFP", [] { return std::make_unique<sched::HfpScheduler>(); }},
      {"hier(mHFP)", hier(bench::mhfp_spec(false, 1e18))},
      {"hier(DARTS+LUF)", hier(bench::darts_spec(core::DartsOptions{}))},
      {"locality",
       [] { return std::make_unique<cluster::LocalityScheduler>(); }},
  };

  util::CsvWriter csv(
      {"nodes", "scheduler", "gflops", "makespan_ms", "network_mb",
       "network_transfers", "steals", "node_task_imbalance", "host_fills",
       "host_evicts", "loads", "transfers_mb"},
      config.output_path);
  csv.comment("fig_multinode: " + config.title);
  char line[160];
  std::snprintf(line, sizeof line,
                "platform: %u GPUs x %.0f MB; net %.1f GB/s + %.0f us; "
                "matmul n=%lld (%u tasks, %u data)",
                config.platform.num_gpus,
                static_cast<double>(config.platform.gpu_memory_bytes) / 1e6,
                config.platform.net_bandwidth_bytes_per_s / 1e9,
                config.platform.net_latency_us,
                static_cast<long long>(flags.get_int("n")), graph.num_tasks(),
                graph.num_data());
  csv.comment(line);

  std::vector<sim::RunReport> reports;
  for (const std::uint32_t nodes : node_counts) {
    if (nodes == 0 || nodes > config.platform.num_gpus) {
      std::fprintf(stderr, "skipping --node-list entry %u: need 1..%u\n",
                   nodes, config.platform.num_gpus);
      continue;
    }
    core::Platform platform = config.platform;
    platform.num_nodes = nodes;

    for (const Spec& spec : specs) {
      auto scheduler = spec.factory();
      sim::EngineConfig engine_config;
      engine_config.seed = config.seed;
      sim::RuntimeEngine engine(graph, platform, *scheduler, engine_config);

      sim::InvariantChecker checker;
      if (flags.get_bool("check")) engine.add_inspector(&checker);
      // The collector always rides along: the cluster section is where the
      // network traffic this figure plots comes from.
      sim::RunReportCollector::Options collector_options;
      char context[96];
      std::snprintf(context, sizeof context, "fig_multinode nodes=%u", nodes);
      collector_options.context = context;
      collector_options.collect_trace = false;
      sim::RunReportCollector collector(std::move(collector_options));
      engine.add_inspector(&collector);

      const core::RunMetrics metrics = sim::run_engine_or_exit(
          engine, spec.label + " at nodes=" + std::to_string(nodes));

      sim::RunReport report = collector.report();
      // Cross-node steals live in the hierarchical driver, not the engine —
      // patch them into the report like ServeEngine does for serving stats.
      if (const auto* hierarchical =
              dynamic_cast<const cluster::HierarchicalScheduler*>(
                  scheduler.get())) {
        report.cluster.steals = hierarchical->steal_count();
      }

      double node_imbalance = 1.0;
      if (report.cluster.enabled) {
        std::uint64_t max_tasks = 0;
        std::uint64_t total = 0;
        for (const auto& node : report.cluster.per_node) {
          max_tasks = std::max(max_tasks, node.tasks_executed);
          total += node.tasks_executed;
        }
        const double mean = static_cast<double>(total) /
                            static_cast<double>(report.cluster.per_node.size());
        node_imbalance =
            mean > 0.0 ? static_cast<double>(max_tasks) / mean : 1.0;
      }

      csv.row({static_cast<std::int64_t>(nodes), spec.label,
               metrics.achieved_gflops(),
               metrics.wall_makespan_us() / 1e3,
               static_cast<double>(report.cluster.network_bytes) / 1e6,
               static_cast<std::int64_t>(report.cluster.network_transfers),
               static_cast<std::int64_t>(report.cluster.steals),
               node_imbalance,
               static_cast<std::int64_t>(report.cluster.host_cache_fills),
               static_cast<std::int64_t>(report.cluster.host_cache_evictions),
               static_cast<std::int64_t>(metrics.total_loads()),
               metrics.transfers_mb()});
      if (!config.run_report_path.empty()) {
        reports.push_back(std::move(report));
      }
    }
  }

  if (!config.run_report_path.empty() &&
      !sim::write_run_reports(reports, "fig_multinode: " + config.title,
                              config.run_report_path)) {
    std::fprintf(stderr, "failed to write run report to %s\n",
                 config.run_report_path.c_str());
    return 1;
  }
  return 0;
}
