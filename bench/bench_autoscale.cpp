// bench_autoscale — the repo's first tracked perf baseline.
//
// Runs one fixed, deterministic autoscaled serving scenario (multi-node
// platform, Poisson burst, scale-out + drain traffic) and emits
// BENCH_autoscale.json: simulation events processed, wall seconds,
// events/sec and peak RSS. CI runs it every push and uploads the JSON, so
// the bench trajectory finally has a point and an engine-layer slowdown
// (or a memory blow-up) shows as a step in the series. The scenario is
// pinned — flags exist for local experiments, but the tracked numbers come
// from the defaults.
//
//   ./bench_autoscale --out=BENCH_autoscale.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sched/hfp.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "util/flags.hpp"
#include "workloads/matmul2d.hpp"

namespace {

/// Peak resident set in MB from /proc/self/status (VmHWM); 0.0 where the
/// proc filesystem is unavailable (non-Linux).
double peak_rss_mb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lf", &kb);
      break;
    }
  }
  std::fclose(status);
  return kb / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "bench_autoscale: tracked perf baseline — one pinned autoscaled "
      "serving run, emitting events/sec and peak RSS as JSON");
  flags.define_string("out", "BENCH_autoscale.json", "output JSON path")
      .define_int("jobs", 120, "jobs in the burst")
      .define_int("n", 8, "matmul template dimension (N)")
      .define_int("gpus", 8, "GPUs (spread over --nodes)")
      .define_int("nodes", 4, "cluster nodes")
      .define_int("repeat", 3, "timed repetitions; fastest wall time wins");
  if (!flags.parse(argc, argv)) return 0;

  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n"))}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("jobs"));
  std::vector<serve::JobSpec> jobs(num_jobs);
  for (serve::JobSpec& job : jobs) job.deadline_us = 100'000.0;

  core::Platform platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")), 200 * core::kMB);
  platform.num_nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  platform.host_memory_bytes = 800 * core::kMB;

  std::uint64_t events = 0;
  double best_wall_s = 0.0;
  const int repeat = static_cast<int>(flags.get_int("repeat"));
  for (int rep = 0; rep < repeat; ++rep) {
    serve::ServeConfig config;
    config.arrival.mode = serve::ArrivalMode::kPoisson;
    config.arrival.rate_jobs_per_s = 500.0;
    config.arrival.seed = 42;
    config.admission.max_jobs_in_flight = 6;
    config.admission.max_queue_depth = 6;
    config.engine.seed = 42;
    config.engine.initial_active_nodes = 1;
    config.autoscale.enabled = true;
    config.autoscale.scale_out_queue = 2;
    config.autoscale.check_interval_us = 10'000.0;
    config.autoscale.cooldown_us = 50'000.0;

    sched::HfpScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler, config);
    const auto start = std::chrono::steady_clock::now();
    try {
      (void)engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure("bench_autoscale", error);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::uint64_t run_events =
        engine.engine().event_queue().events_processed();
    if (rep == 0) {
      events = run_events;
    } else if (events != run_events) {
      std::fprintf(stderr,
                   "bench_autoscale: nondeterministic event count (%llu vs "
                   "%llu)\n",
                   static_cast<unsigned long long>(events),
                   static_cast<unsigned long long>(run_events));
      return 1;
    }
    if (rep == 0 || wall_s < best_wall_s) best_wall_s = wall_s;
  }

  const double events_per_sec =
      best_wall_s > 0.0 ? static_cast<double>(events) / best_wall_s : 0.0;
  const double rss_mb = peak_rss_mb();

  const std::string path = flags.get_string("out");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"autoscale\",\"events\":%llu,"
               "\"wall_s\":%.6f,\"events_per_sec\":%.0f,"
               "\"peak_rss_mb\":%.1f}\n",
               static_cast<unsigned long long>(events), best_wall_s,
               events_per_sec, rss_mb);
  std::fclose(out);
  std::printf("bench_autoscale: %llu events in %.3f s (%.0f events/s), "
              "peak RSS %.1f MB -> %s\n",
              static_cast<unsigned long long>(events), best_wall_s,
              events_per_sec, rss_mb, path.c_str());
  return 0;
}
