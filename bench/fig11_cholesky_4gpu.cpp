// Figure 11: tasks from the Cholesky decomposition (dependencies removed)
// on 4 V100s, with scheduler cost charged. The large task count (O(N^3/6))
// is what motivates DARTS's OPTI variant; GEMM's three inputs exercise
// 3inputs.
#include "common/figure_harness.hpp"
#include "workloads/cholesky.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 11: Cholesky task set, 4 GPUs");
  bench::add_standard_flags(flags, /*default_gpus=*/4);
  flags.define_bool("deps", false,
                    "restore the factorization's real task dependencies "
                    "(the paper strips them; see docs/ARCHITECTURE.md)");
  if (!flags.parse(argc, argv)) return 0;

  const bool deps = flags.get_bool("deps");
  const auto config = bench::config_from_flags(
      flags, deps ? "fig11_deps" : "fig11",
      deps ? "Cholesky tile DAG (with dependencies) on 4 V100s, performance"
           : "Cholesky task set on 4 V100s, performance");
  const bool full = flags.get_bool("full");

  // Working set = N(N+1)/2 tiles of 3.6864 MB; paper sweeps to ~8000 MB
  // (N=65, ~47k tasks).
  std::vector<std::uint32_t> ns =
      full ? std::vector<std::uint32_t>{8, 12, 16, 20, 25, 30, 36, 42, 48, 56, 65}
           : std::vector<std::uint32_t>{8, 12, 16, 20, 24, 28, 32};
  std::vector<bench::WorkloadPoint> points;
  for (std::uint32_t n : ns) {
    points.push_back(bench::WorkloadPoint{
        static_cast<double>(work::cholesky_working_set(n)) / 1e6,
        [n, deps] {
          return work::make_cholesky_tasks(
              {.n = n, .with_dependencies = deps});
        }});
  }

  bench::run_figure(
      config, points,
      {bench::eager_spec(),
       bench::dmdar_spec(),
       bench::darts_spec({.use_luf = true}, /*with_sched_time=*/true),
       bench::darts_spec({.use_luf = true, .three_inputs = true},
                         /*with_sched_time=*/true),
       bench::darts_spec({.use_luf = true, .three_inputs = true, .opti = true},
                         /*with_sched_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
