// Shared working-set sweeps for the 2D-matmul figures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/figure_harness.hpp"
#include "workloads/matmul2d.hpp"

namespace mg::bench {

/// 2D-matmul points for N in `ns` (working set = 2 * N * 14 MB).
inline std::vector<WorkloadPoint> matmul2d_points(
    const std::vector<std::uint32_t>& ns, bool randomize = false,
    std::uint64_t order_seed = 0) {
  std::vector<WorkloadPoint> points;
  for (std::uint32_t n : ns) {
    points.push_back(WorkloadPoint{
        static_cast<double>(work::matmul_2d_working_set(n)) / 1e6,
        [n, randomize, order_seed] {
          return work::make_matmul_2d({.n = n,
                                       .randomize_order = randomize,
                                       .seed = order_seed});
        }});
  }
  return points;
}

/// N values reaching `max_ws_mb`, either a quick sweep or the paper's finer
/// one.
inline std::vector<std::uint32_t> matmul2d_ns(double max_ws_mb, bool full) {
  std::vector<std::uint32_t> ns;
  const auto max_n = static_cast<std::uint32_t>(max_ws_mb / 28.0);
  const std::uint32_t step = full ? 5 : std::max(5u, max_n / 10);
  for (std::uint32_t n = 5; n <= max_n; n += step) ns.push_back(n);
  if (ns.empty() || ns.back() != max_n) ns.push_back(max_n);
  return ns;
}

}  // namespace mg::bench
