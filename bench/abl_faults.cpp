// Ablation: graceful degradation under injected faults. For each scheduler,
// run a 2D matmul fault-free to calibrate the makespan T, then re-run it
// under four fault scenarios scripted relative to T — flaky transfers, a
// GPU loss at 0.3 T, a capacity shock at 0.25 T, and all three combined —
// and report the throughput cost plus the recovery counters
// (docs/ROBUSTNESS.md). A final recovery sweep re-runs the GPU-loss
// scenario across checkpoint interval x replication, reporting
// recovery-latency p50/p95 (nearest-rank, the JobTracker convention) and
// post-loss host-bus loads: checkpointing shortens the re-run of the
// interrupted task, replication pre-places survivors' copies so the loss
// triggers fewer host reloads. With the InvariantChecker attached, every
// run also re-proves the degraded execution model online.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "sched/dmda.hpp"
#include "sched/eager.hpp"
#include "sched/hfp.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_checker.hpp"
#include "util/csv.hpp"
#include "workloads/workloads.hpp"

namespace {

/// Nearest-rank percentile (serve::JobTracker convention).
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(values.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(values.size()))));
  return values[index - 1];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "Fault-injection ablation: scheduler throughput and recovery under "
      "GPU loss, flaky transfers and capacity shocks, plus a checkpoint x "
      "replication recovery sweep");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  flags.define_int("n", 32, "2D matmul dimension (N)");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_faults", "graceful degradation under injected faults");
  bench::RunObserver observer(config);
  const std::uint32_t n = static_cast<std::uint32_t>(flags.get_int("n"));
  const core::TaskGraph graph = work::make_matmul_2d({.n = n});

  util::CsvWriter csv(
      {"scenario", "scheduler", "checkpoint_us", "replicate", "gflops",
       "makespan_ms", "gpu_losses", "capacity_shocks", "tasks_reclaimed",
       "transfer_retries", "wasted_mb", "emergency_evictions", "checkpoints",
       "tasks_restored", "replicas", "replicas_shed", "post_loss_host_loads",
       "recovery_p50_ms", "recovery_p95_ms"},
      config.output_path);
  csv.comment("fault ablation on 2D matmul N=" + std::to_string(n) + ", " +
              std::to_string(config.platform.num_gpus) + " GPU(s)");

  struct SchedulerEntry {
    std::string label;
    std::function<std::unique_ptr<core::Scheduler>()> factory;
  };
  const std::vector<SchedulerEntry> schedulers = {
      {"EAGER", [] { return std::make_unique<sched::EagerScheduler>(); }},
      {"DMDAR", [] { return std::make_unique<sched::DmdaScheduler>(); }},
      {"DARTS+LUF", [] { return std::make_unique<core::DartsScheduler>(); }},
      {"mHFP", [] { return std::make_unique<sched::HfpScheduler>(); }},
  };

  for (const SchedulerEntry& entry : schedulers) {
    // One faulted run; emits a CSV row and returns the makespan.
    auto run_faulted = [&](const std::string& scenario,
                           const sim::FaultPlan& plan,
                           double checkpoint_interval_us, bool replicate) {
      auto scheduler = entry.factory();
      sim::EngineConfig engine_config;
      engine_config.seed = config.seed;
      engine_config.checkpoint_interval_us = checkpoint_interval_us;
      engine_config.checkpoint_fraction = config.checkpoint_fraction;
      engine_config.replicate_hot = replicate;
      sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                engine_config);
      sim::FaultInjector injector(plan);
      engine.set_fault_injector(&injector);
      sim::InvariantChecker checker;  // fail-fast: a bad recovery aborts
      engine.add_inspector(&checker);
      const core::RunMetrics metrics = observer.run(
          engine, graph, entry.label + " " + scenario);
      csv.row({scenario, entry.label, checkpoint_interval_us,
               std::int64_t{replicate ? 1 : 0}, metrics.achieved_gflops(),
               metrics.wall_makespan_us() / 1e3,
               static_cast<std::int64_t>(metrics.faults.gpu_losses),
               static_cast<std::int64_t>(metrics.faults.capacity_shocks),
               static_cast<std::int64_t>(metrics.faults.tasks_reclaimed),
               static_cast<std::int64_t>(metrics.faults.transfer_retries),
               static_cast<double>(metrics.faults.wasted_transfer_bytes) /
                   1e6,
               static_cast<std::int64_t>(metrics.faults.emergency_evictions),
               static_cast<std::int64_t>(metrics.faults.checkpoints_taken),
               static_cast<std::int64_t>(metrics.faults.tasks_restored),
               static_cast<std::int64_t>(metrics.faults.replicas_created),
               static_cast<std::int64_t>(metrics.faults.replicas_shed),
               static_cast<std::int64_t>(
                   metrics.faults.post_loss_host_loads),
               percentile(metrics.faults.recovery_latency_us, 50.0) / 1e3,
               percentile(metrics.faults.recovery_latency_us, 95.0) / 1e3});
    };

    // Calibration run: fault-free makespan anchors the scenario times.
    double makespan_us = 0.0;
    {
      auto scheduler = entry.factory();
      sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                {.seed = config.seed});
      const core::RunMetrics metrics =
          observer.run(engine, graph, entry.label + " none");
      makespan_us = metrics.makespan_us;
      csv.row({std::string("none"), entry.label, 0.0, std::int64_t{0},
               metrics.achieved_gflops(), metrics.wall_makespan_us() / 1e3,
               std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
               std::int64_t{0}, 0.0, std::int64_t{0}, std::int64_t{0},
               std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
               std::int64_t{0}, 0.0, 0.0});
    }

    sim::FaultPlan::TransferFault flaky;
    flaky.probability = 0.15;
    flaky.max_failures_per_transfer = 3;

    sim::FaultPlan::GpuLoss loss;
    loss.time_us = 0.3 * makespan_us;
    loss.gpu = config.platform.num_gpus - 1;

    sim::FaultPlan::CapacityShock shock;
    shock.time_us = 0.25 * makespan_us;
    shock.gpu = 0;
    shock.capacity_bytes = config.platform.gpu_memory_bytes / 3;

    struct Scenario {
      std::string name;
      sim::FaultPlan plan;
    };
    std::vector<Scenario> scenarios(4);
    scenarios[0].name = "transfer-flaky";
    scenarios[0].plan.transfer_faults.push_back(flaky);
    scenarios[1].name = "gpu-loss";
    scenarios[1].plan.gpu_losses.push_back(loss);
    scenarios[2].name = "capacity-shock";
    scenarios[2].plan.capacity_shocks.push_back(shock);
    scenarios[3].name = "combined";
    scenarios[3].plan.transfer_faults.push_back(flaky);
    scenarios[3].plan.gpu_losses.push_back(loss);
    scenarios[3].plan.capacity_shocks.push_back(shock);

    for (Scenario& scenario : scenarios) {
      scenario.plan.seed = config.seed;
      // The base scenarios honor the --checkpoint-interval /
      // --replicate-hot flags, so CI can smoke the proactive machinery
      // through the standard scenario set.
      run_faulted(scenario.name, scenario.plan, config.checkpoint_interval_us,
                  config.replicate_hot);
    }

    // Recovery sweep: the GPU-loss plan across checkpoint interval x
    // replication. Intervals sized against the task duration — snapshots
    // only matter when at least one boundary falls inside a task.
    const double task_us =
        config.platform.compute_time_us(graph.task_flops(0), 0);
    const std::vector<double> intervals = {0.0, task_us / 4.0,
                                           task_us / 16.0};
    for (const double interval : intervals) {
      for (const bool replicate : {false, true}) {
        run_faulted("recovery-sweep", scenarios[1].plan, interval, replicate);
      }
    }
  }
  return 0;
}
