// Figure 7: data transfers (MB) for the 2-GPU 2D matmul of Figure 6, with
// the PCI-limit reference in the per-point comments.
#include "common/figure_harness.hpp"
#include "matmul_points.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 7: 2D matmul, 2 GPUs, transfers");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig07", "2D matmul on 2 V100s, data transfers");
  const bool full = flags.get_bool("full");
  const double max_ws = full ? 4000.0 : 2800.0;
  const auto points =
      bench::matmul2d_points(bench::matmul2d_ns(max_ws, full));

  bench::run_figure(config, points,
                    {bench::eager_spec(),
                     bench::dmdar_spec(),
                     bench::darts_spec({.use_luf = false}),
                     bench::darts_spec({.use_luf = true}),
                     bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
