// Figure 13: the sparse 2D matmul of Figure 12 *without* memory limitation
// (32 GB per GPU): eviction is out of the picture, so what remains is each
// scheduler's ability to spread transfers over time.
#include "common/figure_harness.hpp"
#include "workloads/matmul2d.hpp"
#include "workloads/sparse_matmul.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Figure 13: sparse 2D matmul, 4 GPUs, 32 GB memories");
  bench::add_standard_flags(flags, /*default_gpus=*/4,
                            /*default_mem_mb=*/32000);
  flags.define_double("keep", 0.02, "fraction of tasks kept");
  flags.define_int("sparse-seed", 3, "task-dropping seed");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "fig13", "sparse 2D matmul on 4 V100s, no memory limit");
  const bool full = flags.get_bool("full");
  const double keep = flags.get_double("keep");
  const auto sparse_seed =
      static_cast<std::uint64_t>(flags.get_int("sparse-seed"));

  std::vector<std::uint32_t> ns =
      full ? std::vector<std::uint32_t>{36, 71, 107, 142, 214, 285, 357, 500,
                                        607, 714}
           : std::vector<std::uint32_t>{36, 71, 142, 214, 285, 357};
  std::vector<bench::WorkloadPoint> points;
  for (std::uint32_t n : ns) {
    points.push_back(bench::WorkloadPoint{
        static_cast<double>(work::matmul_2d_working_set(n)) / 1e6,
        [n, keep, sparse_seed] {
          return work::make_sparse_matmul(
              {.n = n, .keep_fraction = keep, .seed = sparse_seed});
        }});
  }

  bench::run_figure(
      config, points,
      {bench::eager_spec(),
       bench::dmdar_spec(),
       bench::darts_spec({.use_luf = true}, /*with_sched_time=*/true),
       bench::darts_spec({.use_luf = true, .opti = true},
                         /*with_sched_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/true),
       bench::hmetis_spec(/*with_partition_time=*/false)});
  return 0;
}
