// bench_occupancy — tracked perf baseline for the GPU-sharing engine path.
//
// Runs one fixed, deterministic occupancy-sharing serving scenario (four
// GPUs, Poisson burst of warp-annotated matmul jobs co-scheduled at
// threshold 1.0) and emits BENCH_occupancy.json: simulation events
// processed, wall seconds, events/sec, peak RSS and the co-run pair count.
// CI runs it every push and uploads the JSON next to BENCH_autoscale.json,
// so a slowdown in the per-GPU running-set bookkeeping (or a memory
// blow-up in the governor) shows as a step in the series. The scenario is
// pinned — flags exist for local experiments, but the tracked numbers come
// from the defaults.
//
//   ./bench_occupancy --out=BENCH_occupancy.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sched/dmda.hpp"
#include "serve/serve_engine.hpp"
#include "sim/engine_guard.hpp"
#include "sim/errors.hpp"
#include "sim/run_report.hpp"
#include "util/flags.hpp"
#include "workloads/matmul2d.hpp"

namespace {

/// Peak resident set in MB from /proc/self/status (VmHWM); 0.0 where the
/// proc filesystem is unavailable (non-Linux).
double peak_rss_mb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lf", &kb);
      break;
    }
  }
  std::fclose(status);
  return kb / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags(
      "bench_occupancy: tracked perf baseline — one pinned GPU-sharing "
      "serving run, emitting events/sec and peak RSS as JSON");
  flags.define_string("out", "BENCH_occupancy.json", "output JSON path")
      .define_int("jobs", 120, "jobs in the burst")
      .define_int("n", 8, "matmul template dimension (N)")
      .define_int("gpus", 4, "GPUs")
      .define_double("threshold", 1.0, "sharing admission threshold")
      .define_int("repeat", 3, "timed repetitions; fastest wall time wins");
  if (!flags.parse(argc, argv)) return 0;

  std::vector<core::TaskGraph> templates;
  templates.push_back(work::make_matmul_2d(
      {.n = static_cast<std::uint32_t>(flags.get_int("n")),
       .derive_warps = true}));
  const std::uint32_t num_jobs =
      static_cast<std::uint32_t>(flags.get_int("jobs"));
  std::vector<serve::JobSpec> jobs(num_jobs);

  core::Platform platform = core::make_v100_platform(
      static_cast<std::uint32_t>(flags.get_int("gpus")), 200 * core::kMB);

  std::uint64_t events = 0;
  std::uint64_t co_run_pairs = 0;
  double best_wall_s = 0.0;
  const int repeat = static_cast<int>(flags.get_int("repeat"));
  for (int rep = 0; rep < repeat; ++rep) {
    serve::ServeConfig config;
    config.arrival.mode = serve::ArrivalMode::kPoisson;
    config.arrival.rate_jobs_per_s = 500.0;
    config.arrival.seed = 42;
    config.admission.max_jobs_in_flight = 8;
    config.engine.seed = 42;
    config.engine.occupancy_threshold = flags.get_double("threshold");

    sched::DmdaScheduler scheduler;
    serve::ServeEngine engine(templates, jobs, platform, scheduler, config);
    sim::RunReportCollector collector(
        {.context = "bench_occupancy", .collect_trace = false});
    engine.add_inspector(&collector);
    const auto start = std::chrono::steady_clock::now();
    try {
      (void)engine.run();
    } catch (const sim::EngineError& error) {
      sim::exit_engine_failure("bench_occupancy", error);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::uint64_t run_events =
        engine.engine().event_queue().events_processed();
    if (rep == 0) {
      events = run_events;
      co_run_pairs = collector.report().occupancy.co_run_pairs;
    } else if (events != run_events) {
      std::fprintf(stderr,
                   "bench_occupancy: nondeterministic event count (%llu vs "
                   "%llu)\n",
                   static_cast<unsigned long long>(events),
                   static_cast<unsigned long long>(run_events));
      return 1;
    }
    if (rep == 0 || wall_s < best_wall_s) best_wall_s = wall_s;
  }

  const double events_per_sec =
      best_wall_s > 0.0 ? static_cast<double>(events) / best_wall_s : 0.0;
  const double rss_mb = peak_rss_mb();

  const std::string path = flags.get_string("out");
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"occupancy\",\"events\":%llu,"
               "\"wall_s\":%.6f,\"events_per_sec\":%.0f,"
               "\"peak_rss_mb\":%.1f,\"co_run_pairs\":%llu}\n",
               static_cast<unsigned long long>(events), best_wall_s,
               events_per_sec, rss_mb,
               static_cast<unsigned long long>(co_run_pairs));
  std::fclose(out);
  std::printf("bench_occupancy: %llu events in %.3f s (%.0f events/s), "
              "%llu co-run pairs, peak RSS %.1f MB -> %s\n",
              static_cast<unsigned long long>(events), best_wall_s,
              events_per_sec,
              static_cast<unsigned long long>(co_run_pairs), rss_mb,
              path.c_str());
  return 0;
}
