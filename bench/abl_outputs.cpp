// Ablation: task output write-backs. The paper excludes outputs, arguing
// they are much smaller than inputs and can be transferred concurrently
// with them; this harness quantifies that claim — each 2D-matmul task
// writes one 3.6864 MB C tile back to the host (vs 28 MB of inputs read).
#include <memory>
#include <string>

#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "matmul_points.hpp"
#include "sched/dmda.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Output write-back ablation on the 2D matmul");
  bench::add_standard_flags(flags, /*default_gpus=*/2);
  flags.define_int("output-kb", 3686, "output bytes per task (KB)");
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_outputs", "task-output write-back ablation");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");
  const auto ns = bench::matmul2d_ns(full ? 2000.0 : 1400.0, full);
  const auto output_bytes =
      static_cast<std::uint64_t>(flags.get_int("output-kb")) * 1000;

  util::CsvWriter csv({"working_set_mb", "scheduler", "outputs", "gflops",
                       "transfers_mb", "written_back_mb"},
                      config.output_path);

  for (std::uint32_t n : ns) {
    for (const bool with_outputs : {false, true}) {
      const core::TaskGraph graph = work::make_matmul_2d(
          {.n = n, .output_bytes = with_outputs ? output_bytes : 0});
      const double ws_mb =
          static_cast<double>(graph.working_set_bytes()) / 1e6;
      for (const bool use_darts : {true, false}) {
        std::unique_ptr<core::Scheduler> scheduler;
        if (use_darts) {
          scheduler = std::make_unique<core::DartsScheduler>();
        } else {
          scheduler = std::make_unique<sched::DmdaScheduler>();
        }
        sim::RuntimeEngine engine(graph, config.platform, *scheduler,
                                  {.seed = config.seed});
        const core::RunMetrics metrics = observer.run(
            engine, graph,
            std::string(scheduler->name()) +
                (with_outputs ? " outputs" : " no-outputs") +
                " n=" + std::to_string(n));
        csv.row({ws_mb, std::string(scheduler->name()),
                 std::string(with_outputs ? "on" : "off"),
                 metrics.achieved_gflops(), metrics.transfers_mb(),
                 static_cast<double>(metrics.total_bytes_written_back()) /
                     1e6});
      }
    }
  }
  return 0;
}
