// Microbenchmark: HFP packing cost scaling — the reason the paper drops
// mHFP from the "real" multi-GPU figures (its static phase grows rapidly
// with the task count, Section V-B/V-C).
#include <benchmark/benchmark.h>

#include "sched/hfp_packing.hpp"
#include "workloads/matmul2d.hpp"

namespace {

using namespace mg;

void BM_HfpPartition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::TaskGraph graph = work::make_matmul_2d({.n = n});
  for (auto _ : state) {
    const auto parts = sched::hfp_partition(graph, 4, 500 * core::kMB);
    benchmark::DoNotOptimize(parts.data());
  }
  state.counters["tasks"] = static_cast<double>(graph.num_tasks());
}
BENCHMARK(BM_HfpPartition)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_HfpBalanceOnly(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::TaskGraph graph = work::make_matmul_2d({.n = n});
  const auto packages = sched::hfp_build_packages(graph, 4, 500 * core::kMB);
  for (auto _ : state) {
    auto copy = packages;
    sched::hfp_balance_loads(graph, copy);
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_HfpBalanceOnly)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
