// Ablation: eviction policy under a *fixed* schedule. DESIGN.md calls out
// LUF as the paper's key eviction contribution; this harness isolates it
// from schedule quality: run DARTS+LUF once, freeze the realized per-GPU
// execution order sigma, then replay exactly sigma under engine-LRU,
// engine-Belady (offline-optimal for sigma), and compare with the live
// DARTS runs (LRU vs LUF).
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/offline_model.hpp"
#include "common/figure_harness.hpp"
#include "core/darts.hpp"
#include "matmul_points.hpp"
#include "sched/fixed_order.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  util::Flags flags("Eviction ablation: LRU vs Belady vs LUF on a fixed order");
  bench::add_standard_flags(flags, /*default_gpus=*/1);
  if (!flags.parse(argc, argv)) return 0;

  const auto config = bench::config_from_flags(
      flags, "abl_eviction", "eviction policy ablation, fixed DARTS order");
  bench::RunObserver observer(config);
  const bool full = flags.get_bool("full");
  const auto ns = bench::matmul2d_ns(full ? 2000.0 : 1400.0, full);

  util::CsvWriter csv({"working_set_mb", "policy", "loads", "transfers_mb",
                       "gflops"},
                      config.output_path);
  csv.comment("eviction ablation on 2D matmul, " +
              std::to_string(config.platform.num_gpus) + " GPU(s)");

  for (std::uint32_t n : ns) {
    const core::TaskGraph graph = work::make_matmul_2d({.n = n});
    const double ws_mb =
        static_cast<double>(graph.working_set_bytes()) / 1e6;

    // Reference run: live DARTS+LUF, trace recorded.
    core::DartsScheduler darts_luf;
    sim::EngineConfig engine_config;
    engine_config.seed = config.seed;
    engine_config.record_trace = true;
    sim::RuntimeEngine reference(graph, config.platform, darts_luf,
                                 engine_config);
    const core::RunMetrics luf_metrics =
        observer.run(reference, graph, "DARTS+LUF (live) n=" + std::to_string(n));
    csv.row({ws_mb, std::string("DARTS+LUF (live)"),
             static_cast<std::int64_t>(luf_metrics.total_loads()),
             luf_metrics.transfers_mb(), luf_metrics.achieved_gflops()});

    // Live DARTS with default LRU.
    core::DartsScheduler darts_lru{core::DartsOptions{.use_luf = false}};
    sim::EngineConfig lru_config;
    lru_config.seed = config.seed;
    sim::RuntimeEngine lru_engine(graph, config.platform, darts_lru,
                                  lru_config);
    const core::RunMetrics lru_metrics =
        observer.run(lru_engine, graph, "DARTS+LRU (live) n=" + std::to_string(n));
    csv.row({ws_mb, std::string("DARTS+LRU (live)"),
             static_cast<std::int64_t>(lru_metrics.total_loads()),
             lru_metrics.transfers_mb(), lru_metrics.achieved_gflops()});

    // Frozen order replays.
    std::vector<std::vector<core::TaskId>> orders;
    for (core::GpuId gpu = 0; gpu < config.platform.num_gpus; ++gpu) {
      orders.push_back(reference.trace().execution_order(gpu));
    }
    for (const bool belady : {false, true}) {
      sched::FixedOrderScheduler replay(
          orders, belady ? sched::FixedOrderScheduler::Eviction::kBelady
                         : sched::FixedOrderScheduler::Eviction::kEngineDefault);
      sim::RuntimeEngine engine(graph, config.platform, replay,
                                {.seed = config.seed});
      const core::RunMetrics metrics = observer.run(
          engine, graph,
          std::string(belady ? "fixed order + Belady" : "fixed order + LRU") +
              " n=" + std::to_string(n));
      csv.row({ws_mb,
               std::string(belady ? "fixed order + Belady"
                                  : "fixed order + LRU"),
               static_cast<std::int64_t>(metrics.total_loads()),
               metrics.transfers_mb(), metrics.achieved_gflops()});
    }

    // Offline Section-III model of the frozen order (loads only).
    const auto offline_belady = analysis::replay_schedule(
        graph, orders, config.platform.gpu_memory_bytes,
        analysis::ReplayEviction::kBelady);
    csv.row({ws_mb, std::string("offline model + Belady"),
             static_cast<std::int64_t>(offline_belady.total_loads),
             static_cast<double>(offline_belady.total_bytes) / 1e6, 0.0});
  }
  return 0;
}
